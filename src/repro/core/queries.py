"""Single-source SimRank* queries and top-k retrieval.

The evaluation issues single-node queries ("500 query nodes ... we
mainly focus on single-node queries"), which do not need the full
``n x n`` similarity matrix. Because SimRank*'s recursion is
two-sided, a naive vector iteration of Eq. (14) cannot produce one
column; instead we evaluate the series column directly::

    s^(., q) = sum_l w_l / 2^l * sum_a binom(l, a) Q^a (Q^T)^{l-a} e_q

walking the ``(a, b)`` grid of partial products ``Q^a (Q^T)^b e_q``
column by column — ``O(L^2)`` sparse mat-vecs and ``O(n)`` extra
memory for a length-``L`` truncation.

:func:`single_source` is served as the ``B = 1`` case of the blocked
kernel :func:`repro.core.multi_source.multi_source`, which shares one
precomputed table of the ``w_l * binom(l, a) / 2^l`` factors across
the whole grid (and across calls). The pre-blocking per-query walk is
kept as :func:`single_source_reference` — an independent oracle for
the parity tests and the "before" side of the benchmark harness.

These functions are stateless; :class:`repro.engine.SimilarityEngine`
wraps them with cached transition matrices and memoized answers for
query-serving workloads (pass ``transition`` / ``transition_t`` to
reuse a prebuilt ``Q`` here directly).
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp

from repro.core.multi_source import multi_source
from repro.core.weights import GeometricWeights, WeightScheme
from repro.graph.digraph import DiGraph
from repro.graph.matrices import backward_transition_matrix
from repro.validation import validate_damping, validate_iterations

__all__ = [
    "single_pair",
    "single_source",
    "single_source_reference",
    "top_k",
]


def single_source(
    graph: DiGraph,
    query: int,
    c: float = 0.6,
    num_terms: int = 10,
    weights: WeightScheme | None = None,
    transition: sp.csr_array | None = None,
    transition_t: sp.csr_array | None = None,
    dtype: np.dtype | str = np.float64,
) -> np.ndarray:
    """SimRank* scores of every node against ``query`` (one column).

    Equals column ``query`` of
    :func:`repro.core.series.simrank_star_series` with the same
    truncation, at ``O(L^2 m)`` cost instead of ``O(L n m)``.

    ``transition`` (the backward transition matrix ``Q``) and
    ``transition_t`` (``Q^T`` in CSR form) may be passed to reuse
    precomputed matrices across queries; both are rebuilt from the
    graph when omitted. ``dtype`` selects the arithmetic precision
    (``float64`` default, ``float32`` opt-in).

    Examples
    --------
    One column of the all-pairs matrix, without building the matrix:

    >>> import numpy as np
    >>> from repro import DiGraph, simrank_star, single_source
    >>> g = DiGraph(3, edges=[(0, 1), (0, 2)])
    >>> column = single_source(g, 2, c=0.6, num_terms=10)
    >>> matrix = simrank_star(g, c=0.6, num_iterations=10)
    >>> bool(np.allclose(column, matrix[:, 2]))
    True
    """
    if not 0 <= query < graph.num_nodes:
        raise IndexError(f"query node {query} out of range")
    block = multi_source(
        graph,
        (query,),
        c=c,
        num_terms=num_terms,
        weights=weights,
        transition=transition,
        transition_t=transition_t,
        dtype=dtype,
    )
    return np.ascontiguousarray(block[:, 0])


def single_source_reference(
    graph: DiGraph,
    query: int,
    c: float = 0.6,
    num_terms: int = 10,
    weights: WeightScheme | None = None,
    transition: sp.csr_array | None = None,
    transition_t: sp.csr_array | None = None,
) -> np.ndarray:
    """The pre-blocking per-query series walk (``O(L^2)`` mat-vecs).

    Kept verbatim as an independent oracle: the parity tests assert
    :func:`multi_source` reproduces it column by column, and the bench
    harness times it as the per-query baseline the blocked kernel is
    measured against. Recomputes every ``w_l * binom(l, a) / 2^l``
    factor inline — the inefficiency the shared coefficient table
    removes.
    """
    if not 0 <= query < graph.num_nodes:
        raise IndexError(f"query node {query} out of range")
    validate_damping(c)
    validate_iterations(num_terms, "num_terms")
    if weights is None:
        weights = GeometricWeights(c)
    elif weights.c != c:
        raise ValueError(
            f"weight scheme damping {weights.c} disagrees with c={c}"
        )
    n = graph.num_nodes
    q = transition if transition is not None else (
        backward_transition_matrix(graph)
    )
    qt = transition_t if transition_t is not None else q.T.tocsr()
    result = np.zeros(n)
    backward = np.zeros(n)  # (Q^T)^beta e_q
    backward[query] = 1.0
    for beta in range(num_terms + 1):
        if beta > 0:
            backward = qt @ backward
        walker = backward  # Q^alpha (Q^T)^beta e_q, alpha = 0
        length = beta
        result = result + (
            weights.length_weight(length)
            * math.comb(length, 0)
            / 2.0 ** length
        ) * walker
        for alpha in range(1, num_terms - beta + 1):
            walker = q @ walker
            length = alpha + beta
            result = result + (
                weights.length_weight(length)
                * math.comb(length, alpha)
                / 2.0 ** length
            ) * walker
    return result


def single_pair(
    graph: DiGraph,
    u: int,
    v: int,
    c: float = 0.6,
    num_terms: int = 10,
    weights: WeightScheme | None = None,
) -> float:
    """SimRank* score of one node pair."""
    return float(single_source(graph, u, c, num_terms, weights)[v])


def top_k(
    graph: DiGraph,
    query: int,
    k: int = 10,
    c: float = 0.6,
    num_terms: int = 10,
    weights: WeightScheme | None = None,
    include_query: bool = False,
):
    """The ``k`` nodes most SimRank*-similar to ``query``.

    Returns a :class:`repro.engine.Ranking` — a sequence of
    ``(node, score)`` pairs sorted by descending score (ties broken by
    node id for determinism) whose entries also carry the node's label
    when the graph has labels. It compares equal to the plain list of
    pairs this function used to return. The query node itself is
    excluded unless ``include_query`` is set.

    Examples
    --------
    >>> from repro import DiGraph, top_k
    >>> g = DiGraph(3, edges=[(0, 1), (0, 2)], labels=["a", "b", "c"])
    >>> ranking = top_k(g, 1, k=2)
    >>> sorted(entry.label for entry in ranking)  # parent + sibling
    ['a', 'c']
    """
    # Imported lazily: repro.engine sits above repro.core in the layer
    # stack, so a module-level import would be circular.
    from repro.engine.results import Ranking

    if k < 0:
        raise ValueError("k must be >= 0")
    scores = single_source(graph, query, c, num_terms, weights)
    # only tag provenance when the scores really are geometric
    # SimRank*; custom weight schemes produce a different measure
    is_geometric = weights is None or isinstance(
        weights, GeometricWeights
    )
    return Ranking.from_scores(
        scores,
        query=query,
        k=k,
        labels=graph.labels,
        include_query=include_query,
        measure="gSR*" if is_geometric else None,
    )
