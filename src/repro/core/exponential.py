"""``eSR*``: the exponential SimRank* variant — Eq. (11), (15), (19).

The exponential series Eq. (11) replaces the geometric length weight
``C^l`` with ``C^l / l!`` and collapses (Theorem 3) to the closed form::

    S' = e^{-C} * e^{(C/2) Q} * e^{(C/2) Q^T}                 (Eq. 15)

Three evaluators are provided:

* :func:`simrank_star_exponential` — the paper's practical iteration
  Eq. (19): build ``T_k = sum_{i<=k} (C/2 Q)^i / i!`` with one sparse
  matrix-vector-block product per step, then form
  ``S'_k = e^{-C} T_k T_k^T``. This is the computation inside
  ``memo-eSR*``.
* :func:`simrank_star_exponential_series` — the triangle partial sums
  of Eq. (18) through the shared series machinery (used for the error
  bound Eq. (12) and cross-validation).
* :func:`simrank_star_exponential_closed` — ``scipy`` matrix
  exponentials evaluating Eq. (15) directly; the ground truth in tests.

``T_k T_k^T`` and the Eq. (18) triangle sum differ at any finite k
(square versus triangular index set) but share the same limit; both
converge factorially fast.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse as sp

from repro.core.convergence import iterations_for_accuracy
from repro.core.kernels import spmm
from repro.core.series import simrank_star_series
from repro.core.weights import ExponentialWeights
from repro.graph.digraph import DiGraph
from repro.graph.matrices import backward_transition_matrix
from repro.validation import validate_damping, validate_iterations

__all__ = [
    "simrank_star_exponential",
    "simrank_star_exponential_closed",
    "simrank_star_exponential_series",
]


def simrank_star_exponential(
    graph: DiGraph,
    c: float = 0.6,
    num_iterations: int | None = 10,
    epsilon: float | None = None,
    transition: sp.csr_array | None = None,
    dtype: np.dtype | str = np.float64,
) -> np.ndarray:
    """All-pairs exponential SimRank* via the Eq. (19) iteration.

    Iterates::

        R_0 = I,  T_0 = I
        R_{k+1} = (C/2) Q R_k / (k+1)   (scaled power term)
        T_{k+1} = T_k + R_{k+1}

    then returns ``e^{-C} T_K T_K^T``. With ``epsilon`` given, the
    factorial bound Eq. (12) picks ``K`` (typically 4-6 for
    ``eps = 1e-3`` — far below the geometric form's K).

    ``transition`` may carry a precomputed ``Q`` to share across runs;
    ``dtype`` selects ``float64`` (default) or ``float32`` arithmetic.
    The loop ping-pongs two preallocated power-term buffers instead of
    allocating a fresh ``n x n`` product per iteration.

    Examples
    --------
    >>> from repro import DiGraph, simrank_star_exponential
    >>> g = DiGraph(3, edges=[(0, 1), (0, 2)])
    >>> s = simrank_star_exponential(g, c=0.8, num_iterations=8)
    >>> s.shape
    (3, 3)
    >>> bool(s[1, 2] > 0) and bool((s == s.T).all())
    True
    """
    validate_damping(c)
    if epsilon is not None:
        if num_iterations not in (None, 10):
            raise ValueError("pass either num_iterations or epsilon")
        num_iterations = iterations_for_accuracy(c, epsilon, "exponential")
    num_iterations = validate_iterations(num_iterations)
    dtype = np.dtype(dtype)
    n = graph.num_nodes
    q = transition if transition is not None else (
        backward_transition_matrix(graph, dtype=dtype)
    )
    if q.dtype != dtype:
        q = q.astype(dtype)
    r = np.eye(n, dtype=dtype)
    r_next = np.empty_like(r)
    t = np.eye(n, dtype=dtype)
    half_c = 0.5 * c
    for k in range(num_iterations):
        spmm(q, r, out=r_next)
        r_next *= half_c / (k + 1)
        r, r_next = r_next, r
        t += r
    out = np.matmul(t, t.T)
    out *= float(np.exp(-c))
    return out


def simrank_star_exponential_series(
    graph: DiGraph, c: float = 0.6, num_terms: int = 10
) -> np.ndarray:
    """Triangle partial sums Eq. (18): ``sum_{l<=k} e^{-C} C^l/l! T_l``."""
    validate_damping(c)
    return simrank_star_series(
        graph, c, num_terms, weights=ExponentialWeights(c)
    )


def simrank_star_exponential_closed(
    graph: DiGraph, c: float = 0.6
) -> np.ndarray:
    """Exact Eq. (15): ``e^{-C} expm(C/2 Q) expm(C/2 Q^T)``."""
    validate_damping(c)
    q = backward_transition_matrix(graph).toarray()
    half = scipy.linalg.expm(0.5 * c * q)
    return float(np.exp(-c)) * (half @ half.T)
