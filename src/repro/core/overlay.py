"""Base + delta CSR overlay: whole-row patches consulted by the kernels.

Applying an edge batch to the transition matrix ``Q`` only changes the
rows of the edit targets — ``O(delta)`` rows out of ``n``. Rebuilding a
clean CSR for that is an ``O(nnz)`` memcpy; :class:`CsrOverlay` instead
keeps the untouched base CSR *byte-for-byte intact* and carries the
replaced rows as a small side CSR. The :func:`repro.core.kernels.spmm`
entry point dispatches on the overlay (``spmm_into``), so the iteration
cores run unchanged: the base product fills every row, then the patch
rows are recomputed from the side CSR — each output row is produced by
the exact same ``csr_matvecs`` accumulation a compacted matrix would
run, so results are bit-identical, not merely close.

Overlays chain (a second delta over an un-compacted first) via
:meth:`with_rows`, and :meth:`tocsr` compacts back to a clean CSR with
one vectorised splice when :attr:`patch_fraction` crosses the caller's
lazy-compaction threshold.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["CsrOverlay"]


class CsrOverlay:
    """A CSR matrix logically equal to ``base`` with some rows replaced.

    Parameters
    ----------
    base:
        The untouched base CSR (never mutated, never copied).
    patch_rows:
        Sorted, unique row indices whose contents are overridden.
    patch:
        A ``(len(patch_rows), base.shape[1])`` CSR holding the
        replacement rows, in ``patch_rows`` order.
    """

    __slots__ = ("base", "patch_rows", "patch")

    def __init__(
        self,
        base: sp.csr_array,
        patch_rows: np.ndarray,
        patch: sp.csr_array,
    ) -> None:
        patch_rows = np.asarray(patch_rows, dtype=np.intp)
        if patch_rows.ndim != 1:
            raise ValueError("patch_rows must be a flat index vector")
        if patch_rows.size:
            if not (np.diff(patch_rows) > 0).all():
                raise ValueError("patch_rows must be sorted and unique")
            if patch_rows[0] < 0 or patch_rows[-1] >= base.shape[0]:
                raise IndexError("patch_rows out of range for base")
        if patch.shape != (patch_rows.size, base.shape[1]):
            raise ValueError(
                f"patch shape {patch.shape} disagrees with "
                f"{patch_rows.size} rows over {base.shape[1]} columns"
            )
        if patch.dtype != base.dtype:
            raise TypeError(
                f"patch dtype {patch.dtype} != base dtype {base.dtype}"
            )
        self.base = base
        self.patch_rows = patch_rows
        self.patch = patch

    # -- matrix-protocol surface consumed by the kernels ---------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.base.shape

    @property
    def dtype(self) -> np.dtype:
        return self.base.dtype

    @property
    def nnz(self) -> int:
        """Logical nonzeros (base rows replaced, not added)."""
        counts = np.diff(self.base.indptr)
        replaced = int(counts[self.patch_rows].sum())
        return int(self.base.nnz) - replaced + int(self.patch.nnz)

    @property
    def patch_fraction(self) -> float:
        """Patched-entry mass relative to the base — compaction trigger."""
        replaced = int(
            np.diff(self.base.indptr)[self.patch_rows].sum()
        )
        overlay_nnz = max(int(self.patch.nnz), replaced)
        return overlay_nnz / max(1, int(self.base.nnz))

    def astype(self, dtype) -> "CsrOverlay | sp.csr_array":
        if np.dtype(dtype) == self.base.dtype:
            return self
        return CsrOverlay(
            self.base.astype(dtype),
            self.patch_rows,
            self.patch.astype(dtype),
        )

    def spmm_into(self, dense: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``out[:] = overlay @ dense`` — base product, then patch rows.

        Untouched rows come from the base CSR's own kernel run; patch
        rows are recomputed from the side CSR through the same kernel,
        so every output row is bit-identical to a compacted matrix's.
        """
        from repro.core.kernels import spmm

        spmm(self.base, dense, out=out)
        if self.patch_rows.size:
            patched = np.zeros(
                (self.patch_rows.size, dense.shape[1]), dtype=out.dtype
            )
            spmm(self.patch, dense, out=patched)
            out[self.patch_rows] = patched
        return out

    # -- delta maintenance ---------------------------------------------
    def row_arrays(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Current column indices of ``rows`` as ``(row_per_entry, cols)``.

        Consults the patch for overridden rows and the base otherwise,
        returning entries grouped by ``rows`` order (columns sorted
        within each row) — the gather primitive delta application uses
        to edit touched rows without materialising the whole matrix.
        """
        rows = np.asarray(rows, dtype=np.intp)
        if rows.size == 0:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty
        pos = np.searchsorted(self.patch_rows, rows)
        pos_c = np.minimum(pos, max(0, self.patch_rows.size - 1))
        in_patch = (
            (self.patch_rows[pos_c] == rows)
            if self.patch_rows.size
            else np.zeros(rows.size, dtype=bool)
        )
        # per-requested-row source slices, gathered without a Python
        # loop: compute each row's count and source start, then turn
        # (start, count) pairs into flat source positions. Both
        # ``where`` branches index with always-valid positions (the
        # patch side clipped, the base side the request itself).
        base_indptr = np.asarray(self.base.indptr, dtype=np.int64)
        if self.patch_rows.size:
            patch_indptr = np.asarray(self.patch.indptr, dtype=np.int64)
            starts = np.where(
                in_patch, patch_indptr[pos_c], base_indptr[rows]
            )
            counts = np.where(
                in_patch,
                patch_indptr[pos_c + 1] - patch_indptr[pos_c],
                base_indptr[rows + 1] - base_indptr[rows],
            )
        else:
            starts = base_indptr[rows]
            counts = base_indptr[rows + 1] - base_indptr[rows]
        total = int(counts.sum())
        within = np.repeat(np.arange(rows.size, dtype=np.intp), counts)
        offsets = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        rank = np.arange(total, dtype=np.int64) - offsets[within]
        src = starts[within] + rank
        cols = np.empty(total, dtype=np.intp)
        from_patch = in_patch[within]
        cols[from_patch] = np.asarray(self.patch.indices)[
            src[from_patch]
        ]
        cols[~from_patch] = np.asarray(self.base.indices)[
            src[~from_patch]
        ]
        return rows[within].astype(np.intp), cols

    def with_rows(
        self, rows: np.ndarray, replacement: sp.csr_array
    ) -> "CsrOverlay":
        """A new overlay over the same base with ``rows`` (re)patched.

        Rows already in the patch are overridden by ``replacement``;
        the union stays sorted. This is how a second delta chains on an
        un-compacted first without touching the shared base.
        """
        rows = np.asarray(rows, dtype=np.intp)
        merged = np.union1d(self.patch_rows, rows)
        if merged.size == 0:
            return CsrOverlay(
                self.base,
                merged,
                sp.csr_array(
                    (0, self.base.shape[1]), dtype=self.dtype
                ),
            )
        pick_new = np.isin(merged, rows)
        new_pos = np.minimum(
            np.searchsorted(rows, merged), max(0, rows.size - 1)
        )
        old_pos = np.minimum(
            np.searchsorted(self.patch_rows, merged),
            max(0, self.patch_rows.size - 1),
        )
        # one vectorised splice instead of a per-row scipy slice loop
        # (row slicing costs ~50µs each — ruinous at tens of
        # thousands of patched rows)
        new_indptr = np.asarray(replacement.indptr, dtype=np.int64)
        old_indptr = np.asarray(self.patch.indptr, dtype=np.int64)
        if rows.size:
            new_starts = new_indptr[new_pos]
            new_counts = new_indptr[new_pos + 1] - new_starts
        else:
            new_starts = new_counts = np.zeros(
                merged.size, dtype=np.int64
            )
        if self.patch_rows.size:
            old_starts = old_indptr[old_pos]
            old_counts = old_indptr[old_pos + 1] - old_starts
        else:
            old_starts = old_counts = np.zeros(
                merged.size, dtype=np.int64
            )
        starts = np.where(pick_new, new_starts, old_starts)
        counts = np.where(pick_new, new_counts, old_counts)
        indptr = np.zeros(merged.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        nnz = int(indptr[-1])
        within = np.repeat(
            np.arange(merged.size, dtype=np.intp), counts
        )
        rank = np.arange(nnz, dtype=np.int64) - indptr[within]
        src = starts[within] + rank
        take_new = pick_new[within]
        idx_dtype = np.asarray(self.patch.indices).dtype
        indices = np.empty(nnz, dtype=idx_dtype)
        data = np.empty(nnz, dtype=self.dtype)
        if take_new.any():
            sel = src[take_new]
            indices[take_new] = np.asarray(replacement.indices)[sel]
            data[take_new] = np.asarray(replacement.data)[sel]
        keep_old = ~take_new
        if keep_old.any():
            sel = src[keep_old]
            indices[keep_old] = np.asarray(self.patch.indices)[sel]
            data[keep_old] = np.asarray(self.patch.data)[sel]
        patch = sp.csr_array(
            (data, indices, indptr), shape=(merged.size, self.base.shape[1])
        )
        return CsrOverlay(self.base, merged, patch)

    def tocsr(self) -> sp.csr_array:
        """Compact to a clean CSR with one vectorised splice.

        Untouched rows are byte-copied from the base; patch rows come
        from the side CSR. No per-row Python loop.
        """
        base, patch = self.base, self.patch
        n = base.shape[0]
        base_counts = np.diff(base.indptr)
        counts = base_counts.copy()
        counts[self.patch_rows] = np.diff(patch.indptr)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        nnz = int(indptr[-1])
        # keep the base's index dtype so untouched arrays stay
        # byte-compatible with a fresh build (scipy picks int32 when
        # the matrix is small enough)
        idx_dtype = base.indptr.dtype
        if nnz <= np.iinfo(idx_dtype).max:
            indptr = indptr.astype(idx_dtype, copy=False)
        indices = np.empty(nnz, dtype=base.indices.dtype)
        data = np.empty(nnz, dtype=base.data.dtype)
        patched = np.zeros(n, dtype=bool)
        patched[self.patch_rows] = True
        entry_rows = np.repeat(
            np.arange(n, dtype=np.intp), base_counts
        )
        src = np.flatnonzero(~patched[entry_rows])
        if src.size:
            rows = entry_rows[src]
            dest = indptr[rows] + (src - base.indptr[rows])
            indices[dest] = base.indices[src]
            data[dest] = base.data[src]
        if patch.nnz:
            within = np.repeat(
                np.arange(self.patch_rows.size, dtype=np.intp),
                np.diff(patch.indptr),
            )
            rows = self.patch_rows[within]
            rank = (
                np.arange(patch.nnz, dtype=np.int64)
                - patch.indptr[within]
            )
            dest = indptr[rows] + rank
            indices[dest] = patch.indices
            data[dest] = patch.data
        return sp.csr_array(
            (data, indices, indptr), shape=base.shape
        )

    def __repr__(self) -> str:
        return (
            f"CsrOverlay(shape={self.shape}, "
            f"patched_rows={self.patch_rows.size}, "
            f"patch_fraction={self.patch_fraction:.4f})"
        )
