"""``memo-gSR*`` / ``memo-eSR*``: fine-grained memoization (Algorithm 1).

SimRank's partial-sums trick does not port to SimRank* (the paper
contrasts Eq. (16) and Eq. (17)): SimRank*'s partial sum
``Partial_{I(b)}(a)`` is specific to the *pair*, so whole-set
memoization shares nothing. The fix is *fine-grained* memoization —
cache sums over sub-sets ``Gamma`` that many in-neighbourhoods share,
found by compressing bicliques of the induced bigraph into
concentration nodes (:mod:`repro.bigraph`).

Two equivalent implementations are provided:

* :func:`memo_simrank_star` — Algorithm 1 step by step: per
  concentration node ``v`` memoize ``Partial_{gamma(v)}``, assemble
  ``Partial_{I(x)}`` from direct tops plus memoized hub partials, then
  combine via Eq. (17). (Loops follow the pseudocode; the inner
  per-query-node loop is a numpy column operation.)
* :func:`memo_simrank_star_factorized` — the same arithmetic as three
  sparse products through the factorisation
  ``A^T = E_direct + H_out H_in``, so each iteration performs exactly
  ``m~`` multiply-adds where the plain iteration performs ``m``.

Both return the same iterates as :func:`repro.core.iterative.simrank_star`
(bit-for-bit up to float addition order), in ``O(K n m~)`` time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.bigraph.compressed import CompressedGraph
from repro.bigraph.concentration import compress_graph
from repro.core.convergence import iterations_for_accuracy
from repro.core.kernels import add_scaled_identity, spmm, symmetrize
from repro.graph.digraph import DiGraph
from repro.validation import validate_damping, validate_iterations

__all__ = [
    "MemoRun",
    "memo_operation_count",
    "memo_simrank_star",
    "memo_simrank_star_exponential",
    "memo_simrank_star_factorized",
    "run_memo_esr",
    "run_memo_gsr",
]


def _resolve_iterations(
    c: float,
    num_iterations: int | None,
    epsilon: float | None,
    variant: str,
    default: int,
) -> int:
    validate_damping(c)
    if epsilon is not None:
        if num_iterations not in (None, default):
            raise ValueError("pass either num_iterations or epsilon")
        return iterations_for_accuracy(c, epsilon, variant)
    return validate_iterations(num_iterations)


def memo_simrank_star(
    graph: DiGraph,
    c: float = 0.6,
    num_iterations: int | None = 5,
    epsilon: float | None = None,
    compressed: CompressedGraph | None = None,
) -> np.ndarray:
    """All-pairs geometric SimRank* via Algorithm 1.

    ``compressed`` may be passed to reuse a preprocessing result
    (Algorithm 1 lines 1-2) across runs; otherwise it is built here.

    Unlike the printed Algorithm 1 (which initialises ``s_0 = I``),
    iteration starts from ``S_0 = (1 - C) I`` so each iterate equals
    the exact series partial sum Eq. (9) — the two initialisations
    share the fixed point, and this one makes cross-implementation
    equality tests exact.

    Examples
    --------
    Agrees with the direct iteration to machine precision:

    >>> import numpy as np
    >>> from repro import DiGraph, memo_simrank_star, simrank_star
    >>> g = DiGraph(4, edges=[(0, 2), (1, 2), (0, 3), (1, 3)])
    >>> memoized = memo_simrank_star(g, c=0.6, num_iterations=5)
    >>> bool(np.allclose(
    ...     memoized, simrank_star(g, c=0.6, num_iterations=5)))
    True
    """
    num_iterations = _resolve_iterations(
        c, num_iterations, epsilon, "geometric", 5
    )
    if compressed is None:
        compressed = compress_graph(graph)
    n = graph.num_nodes
    in_degree = graph.in_degrees().astype(np.float64)
    # Column index arrays per hub and per bottom node, built once.
    hub_columns = [
        np.fromiter(b.bottoms, dtype=np.intp) for b in compressed.bicliques
    ]
    bottoms = sorted(compressed.direct_tops)
    direct_columns = {
        x: np.fromiter(compressed.direct_tops[x], dtype=np.intp)
        for x in bottoms
    }
    hub_lists = {
        x: sorted(compressed.hub_memberships[x]) for x in bottoms
    }
    base = (1.0 - c) * np.eye(n)
    s = base.copy()
    for _ in range(num_iterations):
        # Lines 5-7: memoize Partial_{gamma(v)}(a) for every hub, all a
        # at once (one vector per hub).
        hub_partials = [
            s[:, np.fromiter(compressed.fan_in(v), dtype=np.intp)].sum(
                axis=1
            )
            for v in range(compressed.num_concentration_nodes)
        ]
        # Lines 8-10: Partial_{I(x)}(a) = direct tops + shared partials.
        partial = np.zeros((n, n))  # partial[a, x] = Partial_{I(x)}(a)
        for x in bottoms:
            column = np.zeros(n)
            cols = direct_columns[x]
            if cols.size:
                column += s[:, cols].sum(axis=1)
            for v in hub_lists[x]:
                column += hub_partials[v]
            partial[:, x] = column
        # Lines 12-17: Eq. (17).  t1(x, y) = C/(2 |I(x)|) P[y, x];
        # t2 is its transpose by symmetry of s.
        scale = np.divide(
            c / 2.0,
            in_degree,
            out=np.zeros_like(in_degree),
            where=in_degree > 0,
        )
        t1 = scale[:, None] * partial.T
        s = t1 + t1.T + base
        del hub_partials, partial  # line 11 / 18: free memoized sums
    return s


def _factorized_operator(
    compressed: CompressedGraph,
    dtype: np.dtype = np.float64,
) -> tuple[sp.csr_array, sp.csr_array, sp.csr_array, np.ndarray]:
    e_direct, h_out, h_in = compressed.factorized_in_adjacency()
    if e_direct.dtype != dtype:
        e_direct = e_direct.astype(dtype)
        h_out = h_out.astype(dtype)
        h_in = h_in.astype(dtype)
    in_degree = compressed.graph.in_degrees().astype(np.float64)
    inv_degree = np.divide(
        1.0,
        in_degree,
        out=np.zeros_like(in_degree),
        where=in_degree > 0,
    ).astype(dtype, copy=False)
    return e_direct, h_out, h_in, inv_degree


def memo_simrank_star_factorized(
    graph: DiGraph,
    c: float = 0.6,
    num_iterations: int | None = 5,
    epsilon: float | None = None,
    compressed: CompressedGraph | None = None,
    dtype: np.dtype | str = np.float64,
) -> np.ndarray:
    """``memo-gSR*`` through the factorised sparse operator.

    Evaluates ``Q S = D^{-1} (E_direct S + H_out (H_in S))`` — the
    multiply count per iteration is ``n * m~`` versus ``n * m`` for
    :func:`repro.core.iterative.simrank_star`. All loop temporaries
    (``E_direct S``, ``H_in S``, the hub product, the iterate) live in
    buffers allocated once before the first iteration.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import (DiGraph, memo_simrank_star_factorized,
    ...                    simrank_star)
    >>> g = DiGraph(4, edges=[(0, 2), (1, 2), (0, 3), (1, 3)])
    >>> fast = memo_simrank_star_factorized(g, c=0.6, num_iterations=5)
    >>> bool(np.allclose(
    ...     fast, simrank_star(g, c=0.6, num_iterations=5)))
    True
    """
    num_iterations = _resolve_iterations(
        c, num_iterations, epsilon, "geometric", 5
    )
    if compressed is None:
        compressed = compress_graph(graph)
    dtype = np.dtype(dtype)
    n = graph.num_nodes
    e_direct, h_out, h_in, inv_degree = _factorized_operator(
        compressed, dtype
    )
    s = np.zeros((n, n), dtype=dtype)
    add_scaled_identity(s, 1.0 - c)
    qs = np.empty_like(s)
    hub_product = np.empty_like(s)
    hub_state = np.empty((h_in.shape[0], n), dtype=dtype)
    half_c = 0.5 * c
    for _ in range(num_iterations):
        spmm(e_direct, s, out=qs)
        spmm(h_in, s, out=hub_state)
        spmm(h_out, hub_state, out=hub_product)
        qs += hub_product
        qs *= inv_degree[:, None]
        symmetrize(qs, out=s, scale=half_c)
        add_scaled_identity(s, 1.0 - c)
    return s


def memo_simrank_star_exponential(
    graph: DiGraph,
    c: float = 0.6,
    num_iterations: int | None = 10,
    epsilon: float | None = None,
    compressed: CompressedGraph | None = None,
    dtype: np.dtype | str = np.float64,
) -> np.ndarray:
    """``memo-eSR*``: exponential SimRank* with the factorised operator.

    Runs the Eq. (19) recurrence ``R_{k+1} = Q R_k`` through the
    compressed factorisation (in preallocated buffers, like the
    geometric path), then returns ``e^{-C} T T^T``. The factorial
    error bound means far fewer iterations than the geometric variant
    for the same accuracy.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import (DiGraph, memo_simrank_star_exponential,
    ...                    simrank_star_exponential)
    >>> g = DiGraph(4, edges=[(0, 2), (1, 2), (0, 3), (1, 3)])
    >>> fast = memo_simrank_star_exponential(
    ...     g, c=0.6, num_iterations=8)
    >>> bool(np.allclose(fast, simrank_star_exponential(
    ...     g, c=0.6, num_iterations=8)))
    True
    """
    num_iterations = _resolve_iterations(
        c, num_iterations, epsilon, "exponential", 10
    )
    if compressed is None:
        compressed = compress_graph(graph)
    dtype = np.dtype(dtype)
    n = graph.num_nodes
    e_direct, h_out, h_in, inv_degree = _factorized_operator(
        compressed, dtype
    )
    r = np.eye(n, dtype=dtype)
    qr = np.empty_like(r)
    hub_product = np.empty_like(r)
    hub_state = np.empty((h_in.shape[0], n), dtype=dtype)
    t = np.eye(n, dtype=dtype)
    half_c = 0.5 * c
    for k in range(num_iterations):
        spmm(e_direct, r, out=qr)
        spmm(h_in, r, out=hub_state)
        spmm(h_out, hub_state, out=hub_product)
        qr += hub_product
        qr *= inv_degree[:, None]
        qr *= half_c / (k + 1)
        r, qr = qr, r
        t += r
    out = np.matmul(t, t.T)
    out *= float(np.exp(-c))
    return out


def memo_operation_count(
    compressed: CompressedGraph, num_iterations: int
) -> int:
    """Additions + assignments cost model for ``memo-gSR*``.

    Per iteration and per query node ``a``: every edge of ``G^``
    participates in exactly one addition-or-assignment when building
    the shared and final partial sums — ``n * m~`` total, versus
    ``2 n m`` for ``psum-SR``
    (:func:`repro.baselines.psum.psum_operation_count`).
    """
    return num_iterations * compressed.graph.num_nodes * compressed.num_edges


@dataclass(frozen=True)
class MemoRun:
    """Phase-split result of a memoized SimRank* run (Figure 6(f))."""

    scores: np.ndarray
    compressed: CompressedGraph
    compress_seconds: float  # "Compress Bigraph" phase
    iterate_seconds: float  # "Share Sums" phase
    operation_count: int

    @property
    def total_seconds(self) -> float:
        return self.compress_seconds + self.iterate_seconds


def _timed_run(graph, c, num_iterations, epsilon, kernel, variant, default):
    resolved = _resolve_iterations(
        c, num_iterations, epsilon, variant, default
    )
    start = time.perf_counter()
    compressed = compress_graph(graph)
    compress_seconds = time.perf_counter() - start
    start = time.perf_counter()
    scores = kernel(
        graph, c, num_iterations=resolved, compressed=compressed
    )
    iterate_seconds = time.perf_counter() - start
    return MemoRun(
        scores=scores,
        compressed=compressed,
        compress_seconds=compress_seconds,
        iterate_seconds=iterate_seconds,
        operation_count=memo_operation_count(compressed, resolved),
    )


def run_memo_gsr(
    graph: DiGraph,
    c: float = 0.6,
    num_iterations: int | None = 5,
    epsilon: float | None = None,
) -> MemoRun:
    """``memo-gSR*`` with per-phase timings (drives Figure 6(e)/(f))."""
    return _timed_run(
        graph, c, num_iterations, epsilon,
        memo_simrank_star_factorized, "geometric", 5,
    )


def run_memo_esr(
    graph: DiGraph,
    c: float = 0.6,
    num_iterations: int | None = 10,
    epsilon: float | None = None,
) -> MemoRun:
    """``memo-eSR*`` with per-phase timings (drives Figure 6(e)/(f))."""
    return _timed_run(
        graph, c, num_iterations, epsilon,
        memo_simrank_star_exponential, "exponential", 10,
    )
