"""Blocked multi-source SimRank* queries — many columns in one grid walk.

:func:`repro.core.queries.single_source` evaluates one series column by
walking the ``(alpha, beta)`` grid of partial products
``Q^alpha (Q^T)^beta e_q`` — ``O(L^2)`` sparse mat-*vecs* per query.
Serving a batch of ``B`` query nodes that way costs ``B`` independent
walks, and the per-call overhead of a sparse mat-vec dwarfs its
arithmetic on real graphs.

:func:`multi_source` evaluates the same truncated series for a dense
``n x B`` block of one-hot query columns ``E`` with ``2 L`` sparse
products total instead of ``B * O(L^2)`` mat-vecs, by factorising the
grid::

    S[:, queries] = sum_a Q^a U_a,
    U_a           = sum_b coef[b, a] (Q^T)^b E

1. **backward pass** — ``L`` sparse x block products build
   ``W_b = (Q^T)^b E`` for ``b = 0 .. L``;
2. **coefficient contraction** — one dense ``(L+1) x (L+1)`` GEMM
   against the stacked ``W`` turns the scalar table
   ``coef[b, a] = w_{a+b} * binom(a+b, a) / 2^{a+b}`` into every
   ``U_a`` at once (BLAS-3, no per-term Python);
3. **Horner sweep** — ``result = U_0 + Q (U_1 + Q (U_2 + ...))``,
   ``L`` more sparse x block products, executed in-place through
   :func:`repro.core.kernels.spmm`.

The coefficient table is precomputed once per ``(num_terms, weights)``
by :func:`series_coefficients` and shared with the single-source path,
which is now the ``B = 1`` case of this kernel. ``block_size`` caps
how many query columns are in flight at once (working memory is
``~2 (L+1) * n * block`` floats).
"""

from __future__ import annotations

import functools
import math
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.core.kernels import spmm
from repro.core.weights import GeometricWeights, WeightScheme
from repro.graph.digraph import DiGraph
from repro.graph.matrices import backward_transition_matrix
from repro.validation import validate_damping, validate_iterations

__all__ = ["multi_source", "series_coefficients"]

#: Default cap on query columns processed per pass; bounds the stacked
#: backward-walk storage at ``~2 (L+1) * n * 64`` floats.
DEFAULT_BLOCK_SIZE = 64


@functools.lru_cache(maxsize=64)
def _coefficients_cached(
    num_terms: int, weights: WeightScheme
) -> np.ndarray:
    table = np.zeros((num_terms + 1, num_terms + 1), dtype=np.float64)
    for beta in range(num_terms + 1):
        for alpha in range(num_terms + 1 - beta):
            length = alpha + beta
            table[beta, alpha] = (
                weights.length_weight(length)
                * math.comb(length, alpha)
                / 2.0 ** length
            )
    table.flags.writeable = False  # cached and shared across callers
    return table


def series_coefficients(
    num_terms: int, weights: WeightScheme
) -> np.ndarray:
    """The ``(L+1) x (L+1)`` table ``coef[beta, alpha]`` of series factors.

    ``coef[beta, alpha] = w_{alpha+beta} * binom(alpha+beta, alpha) /
    2^{alpha+beta}`` for ``alpha + beta <= num_terms`` (zero above the
    anti-diagonal). Memoized per ``(num_terms, weights)`` — weight
    schemes are frozen dataclasses, so equal configurations share one
    read-only table across every query batch.
    """
    validate_iterations(num_terms, "num_terms")
    return _coefficients_cached(num_terms, weights)


def _solve_block(
    q: sp.csr_array,
    qt: sp.csr_array,
    coef_t: np.ndarray,
    query_ids: np.ndarray,
    num_terms: int,
    out: np.ndarray,
) -> None:
    """Backward pass + coefficient GEMM + Horner sweep for one block."""
    n = q.shape[0]
    width = query_ids.size
    dtype = out.dtype
    levels = num_terms + 1
    walks = np.zeros((levels, n, width), dtype=dtype)
    walks[0][query_ids, np.arange(width)] = 1.0
    for b in range(1, levels):
        spmm(qt, walks[b - 1], out=walks[b])
    # u[a] = sum_b coef[b, a] * walks[b] — one BLAS-3 contraction.
    u = np.matmul(
        coef_t, walks.reshape(levels, n * width)
    ).reshape(levels, n, width)
    acc = u[num_terms]
    scratch = np.empty((n, width), dtype=dtype)
    for a in range(num_terms - 1, -1, -1):
        spmm(q, acc, out=scratch)
        scratch += u[a]
        # ping-pong: the buffer `acc` pointed at (a slice of u or the
        # scratch) is dead after this step, so reuse it next round
        acc, scratch = scratch, acc
    out[...] = acc


def multi_source(
    graph: DiGraph,
    queries: Sequence[int],
    c: float = 0.6,
    num_terms: int = 10,
    weights: WeightScheme | None = None,
    transition: sp.csr_array | None = None,
    transition_t: sp.csr_array | None = None,
    dtype: np.dtype | str = np.float64,
    block_size: int = DEFAULT_BLOCK_SIZE,
    coefficients: np.ndarray | None = None,
) -> np.ndarray:
    """SimRank* scores of every node against a batch of query nodes.

    Returns an ``(n, B)`` array whose column ``j`` equals
    ``single_source(graph, queries[j], ...)`` (to ~1e-15 in float64 —
    the factorised evaluation reorders float additions — and to a
    loose ~1e-4 tolerance in float32). Duplicate queries are allowed
    and produce duplicate columns.

    Parameters mirror :func:`repro.core.queries.single_source`;
    ``dtype`` selects the arithmetic precision (``float64`` default,
    ``float32`` halves memory traffic), ``block_size`` caps the query
    columns processed per pass, and ``transition`` /
    ``transition_t`` reuse a prebuilt ``Q`` / ``Q^T`` (converted to
    ``dtype`` if they disagree). ``coefficients`` reuses a precomputed
    :func:`series_coefficients` table (e.g. one loaded from a
    :class:`~repro.index.SimilarityIndex`); its shape must match
    ``num_terms``.

    Examples
    --------
    One blocked walk answers the whole batch:

    >>> import numpy as np
    >>> from repro import DiGraph, multi_source, single_source
    >>> g = DiGraph(3, edges=[(0, 1), (0, 2)])
    >>> block = multi_source(g, (1, 2), c=0.6, num_terms=10)
    >>> block.shape
    (3, 2)
    >>> bool(np.allclose(block[:, 1], single_source(g, 2)))
    True
    """
    validate_damping(c)
    validate_iterations(num_terms, "num_terms")
    if weights is None:
        weights = GeometricWeights(c)
    elif weights.c != c:
        raise ValueError(
            f"weight scheme damping {weights.c} disagrees with c={c}"
        )
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    dtype = np.dtype(dtype)
    n = graph.num_nodes
    query_ids = np.asarray(list(queries))
    if query_ids.ndim != 1:
        raise ValueError("queries must be a flat sequence of node ids")
    if query_ids.size and not np.issubdtype(
        query_ids.dtype, np.integer
    ):
        # an unsafe intp cast would silently truncate 1.7 -> node 1
        raise TypeError(
            f"query ids must be integers, got dtype {query_ids.dtype}"
        )
    query_ids = query_ids.astype(np.intp)
    if query_ids.size and not (
        (0 <= query_ids).all() and (query_ids < n).all()
    ):
        bad = query_ids[(query_ids < 0) | (query_ids >= n)][0]
        raise IndexError(f"query node {int(bad)} out of range")
    num_queries = query_ids.size
    if coefficients is None:
        coef = series_coefficients(num_terms, weights)
    else:
        coef = np.asarray(coefficients)
        if coef.shape != (num_terms + 1, num_terms + 1):
            raise ValueError(
                f"coefficients table has shape {coef.shape}; "
                f"num_terms={num_terms} needs "
                f"{(num_terms + 1, num_terms + 1)}"
            )
    coef_t = np.ascontiguousarray(coef.T, dtype=dtype)

    q = transition if transition is not None else (
        backward_transition_matrix(graph, dtype=dtype)
    )
    if q.dtype != dtype:
        q = q.astype(dtype)
    qt = transition_t if transition_t is not None else q.T.tocsr()
    if qt.dtype != dtype:
        qt = qt.astype(dtype)

    result = np.empty((n, num_queries), dtype=dtype)
    for start in range(0, num_queries, block_size):
        stop = min(start + block_size, num_queries)
        _solve_block(
            q,
            qt,
            coef_t,
            query_ids[start:stop],
            num_terms,
            result[:, start:stop],
        )
    return result
