"""Allocation-free sparse x dense building blocks for the iteration cores.

``scipy.sparse`` matmul (``q @ s``) allocates a fresh dense result on
every call, which at ``K`` iterations over an ``n x n`` iterate means
``K`` full-matrix allocations per run — pure constant-factor waste in
the serving hot paths. CPython exposes the underlying CSR kernel
(``csr_matvecs``: ``Y += A @ X`` into a caller-owned buffer) through
``scipy.sparse._sparsetools``; :func:`spmm` wraps it with an ``out``
parameter and falls back to the public operator when the private hook
is unavailable, so correctness never depends on a scipy internal.

Callers should pass C-contiguous ``float32`` / ``float64`` buffers
whose dtype matches the sparse operand — that is the allocation-free
fast path. Mismatched dtypes or non-contiguous buffers stay *correct*
but quietly degrade to the allocating public operator, exactly like a
missing private hook; the in-repo iteration cores always satisfy the
fast-path contract.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

try:  # pragma: no cover - exercised indirectly by every kernel test
    from scipy.sparse import _sparsetools as _st

    _HAVE_SPARSETOOLS = hasattr(_st, "csr_matvecs")
except ImportError:  # pragma: no cover - older/newer scipy layouts
    _st = None
    _HAVE_SPARSETOOLS = False

__all__ = ["add_scaled_identity", "spmm", "symmetrize"]


def _as_csr(matrix: sp.sparray) -> sp.csr_array:
    if not isinstance(matrix, (sp.csr_array, sp.csr_matrix)):
        raise TypeError(
            f"spmm needs a CSR operand, got {type(matrix).__name__}"
        )
    return matrix


def spmm(
    matrix: sp.csr_array,
    dense: np.ndarray,
    out: np.ndarray,
    accumulate: bool = False,
) -> np.ndarray:
    """``out[:] = matrix @ dense`` (or ``out += ...``) without allocating.

    ``dense`` and ``out`` must be distinct C-contiguous 2-D arrays of
    the sparse operand's dtype. Returns ``out``.

    A :class:`repro.core.overlay.CsrOverlay` operand dispatches to its
    own ``spmm_into`` (base product + patched-row fixup, bit-identical
    to the compacted matrix); overlays only support the non-accumulate
    form.
    """
    if hasattr(matrix, "spmm_into"):
        if accumulate:
            raise TypeError(
                "CSR overlays do not support accumulate=True; "
                "compact with .tocsr() first"
            )
        n_row, n_col = matrix.shape
        if dense.ndim != 2 or out.ndim != 2:
            raise ValueError("spmm operates on 2-D dense blocks")
        if dense.shape[0] != n_col or out.shape != (
            n_row,
            dense.shape[1],
        ):
            raise ValueError(
                f"shape mismatch: {matrix.shape} @ {dense.shape} "
                f"-> {out.shape}"
            )
        if out is dense or np.shares_memory(out, dense):
            raise ValueError("out must not alias the dense operand")
        return matrix.spmm_into(dense, out)
    _as_csr(matrix)
    n_row, n_col = matrix.shape
    if dense.ndim != 2 or out.ndim != 2:
        raise ValueError("spmm operates on 2-D dense blocks")
    if dense.shape[0] != n_col or out.shape != (n_row, dense.shape[1]):
        raise ValueError(
            f"shape mismatch: {matrix.shape} @ {dense.shape} -> {out.shape}"
        )
    if out is dense or np.shares_memory(out, dense):
        raise ValueError("out must not alias the dense operand")
    if not (
        _HAVE_SPARSETOOLS
        and dense.flags.c_contiguous
        and out.flags.c_contiguous
        and dense.dtype == matrix.dtype == out.dtype
    ):
        # Public-API fallback: one temporary, still correct.
        if accumulate:
            out += matrix @ dense
        else:
            out[...] = matrix @ dense
        return out
    if not accumulate:
        out.fill(0)
    _st.csr_matvecs(
        n_row,
        n_col,
        dense.shape[1],
        matrix.indptr,
        matrix.indices,
        matrix.data,
        dense.ravel(),
        out.ravel(),
    )
    return out


def symmetrize(m: np.ndarray, out: np.ndarray, scale: float) -> np.ndarray:
    """``out[:] = scale * (m + m.T)`` in place (``out`` distinct from ``m``)."""
    if m is out or np.shares_memory(m, out):
        raise ValueError("symmetrize needs distinct in/out buffers")
    np.add(m, m.T, out=out)
    out *= scale
    return out


def add_scaled_identity(matrix: np.ndarray, value: float) -> np.ndarray:
    """``matrix += value * I`` without materialising the identity."""
    n = matrix.shape[0]
    matrix.flat[:: n + 1] += value
    return matrix
