"""``iter-gSR*``: the geometric SimRank* fixed-point iteration.

Theorem 2 collapses the geometric series Eq. (7) to::

    S^ = C/2 * (Q S^ + S^ Q^T) + (1 - C) * I_n          (Eq. 13)

computed by the iteration of Lemma 4::

    S^_0    = (1 - C) * I
    S^_{k+1} = C/2 * (Q S^_k + S^_k Q^T) + (1 - C) * I   (Eq. 14)

whose k-th iterate equals the k-th series partial sum Eq. (9) exactly
(verified in tests). Because ``S^_k`` is symmetric, ``S^_k Q^T`` is the
transpose of ``Q S^_k`` — so each iteration needs **one** sparse-dense
multiplication, versus SimRank's two. That constant factor is the
paper's "looks even simpler than SimRank" speedup (Section 4.2), and
it is what the Figure 6(e) benchmark measures.

The loop is allocation-free: the iterate ``S`` and one scratch matrix
``M`` are allocated once and every step writes into them in place
(:mod:`repro.core.kernels`), instead of materialising four fresh
``n x n`` temporaries per iteration.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.convergence import iterations_for_accuracy
from repro.core.kernels import add_scaled_identity, spmm, symmetrize
from repro.graph.digraph import DiGraph
from repro.graph.matrices import backward_transition_matrix
from repro.validation import validate_damping, validate_iterations

__all__ = ["simrank_star", "simrank_star_fixed_point_residual"]


def simrank_star(
    graph: DiGraph,
    c: float = 0.6,
    num_iterations: int | None = 5,
    epsilon: float | None = None,
    transition: sp.csr_array | None = None,
    dtype: np.dtype | str = np.float64,
) -> np.ndarray:
    """All-pairs geometric SimRank* via Eq. (14).

    Parameters
    ----------
    graph:
        Input digraph.
    c:
        Damping factor in (0, 1). The paper's default is 0.6.
    num_iterations:
        Number of iterations ``K``. Mutually exclusive with
        ``epsilon``.
    epsilon:
        Target accuracy; Lemma 3 guarantees
        ``||S^ - S^_K||_max <= C^{K+1}``, so ``K = ceil(log_C eps)``
        iterations are run.
    transition:
        Optional precomputed backward transition matrix ``Q`` (as from
        :func:`repro.graph.matrices.backward_transition_matrix`), so a
        caller serving many runs can build it once. Converted to
        ``dtype`` if it disagrees.
    dtype:
        Arithmetic precision — ``float64`` (default) or ``float32``.

    Returns
    -------
    numpy.ndarray
        Symmetric ``n x n`` matrix with entries in ``[0, 1]``.

    Examples
    --------
    >>> from repro import DiGraph, simrank_star
    >>> g = DiGraph(3, edges=[(0, 1), (0, 2)])
    >>> s = simrank_star(g, c=0.8, num_iterations=10)
    >>> s.shape
    (3, 3)
    >>> bool(s[1, 2] > 0)          # siblings share an in-neighbour
    True
    >>> bool((s == s.T).all())     # SimRank* is symmetric
    True
    """
    validate_damping(c)
    if epsilon is not None:
        if num_iterations not in (None, 5):
            raise ValueError("pass either num_iterations or epsilon")
        num_iterations = iterations_for_accuracy(c, epsilon, "geometric")
    num_iterations = validate_iterations(num_iterations)
    dtype = np.dtype(dtype)
    n = graph.num_nodes
    q = transition if transition is not None else (
        backward_transition_matrix(graph, dtype=dtype)
    )
    if q.dtype != dtype:
        q = q.astype(dtype)
    s = np.zeros((n, n), dtype=dtype)
    add_scaled_identity(s, 1.0 - c)
    m = np.empty_like(s)
    half_c = 0.5 * c
    for _ in range(num_iterations):
        spmm(q, s, out=m)
        symmetrize(m, out=s, scale=half_c)
        add_scaled_identity(s, 1.0 - c)
    return s


def simrank_star_fixed_point_residual(
    graph: DiGraph, s: np.ndarray, c: float
) -> float:
    """``||C/2 (Q S + S Q^T) + (1-C) I - S||_max`` — 0 at the fixed point.

    A diagnostic used by tests and the experiment harness to confirm a
    matrix actually solves Eq. (13).
    """
    n = graph.num_nodes
    q = backward_transition_matrix(graph)
    m = q @ s
    residual = 0.5 * c * (m + (s @ q.T)) + (1.0 - c) * np.eye(n) - s
    return float(np.abs(residual).max())
