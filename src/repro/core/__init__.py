"""SimRank* — the paper's primary contribution.

Public surface:

* :func:`simrank_star` — geometric SimRank* by the Eq. (14) recursion
  (``iter-gSR*``).
* :func:`simrank_star_exponential` (+ ``_series`` / ``_closed``) — the
  exponential variant, Eq. (11)/(15)/(19).
* :func:`memo_simrank_star` / :func:`memo_simrank_star_factorized` /
  :func:`memo_simrank_star_exponential` — fine-grained memoization over
  the compressed graph (Algorithm 1, ``memo-gSR*`` / ``memo-eSR*``).
* :func:`simrank_star_series` — truncated series forms for any weight
  scheme; :mod:`repro.core.weights` defines the schemes.
* :func:`single_source` / :func:`multi_source` / :func:`top_k` —
  query-time APIs (``multi_source`` is the blocked batch kernel;
  ``single_source`` is its ``B = 1`` case).
* :mod:`repro.core.paths` — in-link path semantics (Lemma 1 et al.).
* :mod:`repro.core.convergence` — Lemma 3 / Eq. (12) bounds.
"""

from repro.core.convergence import (
    exponential_error_bound,
    geometric_error_bound,
    iterations_for_accuracy,
)
from repro.core.exponential import (
    simrank_star_exponential,
    simrank_star_exponential_closed,
    simrank_star_exponential_series,
)
from repro.core.iterative import (
    simrank_star,
    simrank_star_fixed_point_residual,
)
from repro.core.join import similarity_join, top_pairs
from repro.core.memo import (
    MemoRun,
    memo_operation_count,
    memo_simrank_star,
    memo_simrank_star_exponential,
    memo_simrank_star_factorized,
    run_memo_esr,
    run_memo_gsr,
)
from repro.core.paths import (
    accommodated_path_shapes,
    count_inlink_paths,
    count_specific_paths,
    dissymmetric_inlink_path_exists,
    inlink_path_exists,
    path_contribution,
    reachability,
    symmetric_inlink_path_exists,
)
from repro.core.multi_source import multi_source, series_coefficients
from repro.core.queries import (
    single_pair,
    single_source,
    single_source_reference,
    top_k,
)
from repro.core.series import (
    simrank_star_series,
    simrank_star_series_bruteforce,
    transition_polynomials,
)
from repro.core.sieve import clip_small, sieve_to_sparse, storage_savings
from repro.core.weights import (
    ExponentialWeights,
    GeometricWeights,
    HarmonicWeights,
    WeightScheme,
    symmetry_weights,
)

__all__ = [
    "ExponentialWeights",
    "GeometricWeights",
    "HarmonicWeights",
    "MemoRun",
    "WeightScheme",
    "accommodated_path_shapes",
    "clip_small",
    "count_inlink_paths",
    "count_specific_paths",
    "dissymmetric_inlink_path_exists",
    "exponential_error_bound",
    "geometric_error_bound",
    "inlink_path_exists",
    "iterations_for_accuracy",
    "memo_operation_count",
    "memo_simrank_star",
    "memo_simrank_star_exponential",
    "memo_simrank_star_factorized",
    "multi_source",
    "path_contribution",
    "reachability",
    "run_memo_esr",
    "run_memo_gsr",
    "series_coefficients",
    "sieve_to_sparse",
    "similarity_join",
    "simrank_star",
    "simrank_star_exponential",
    "simrank_star_exponential_closed",
    "simrank_star_exponential_series",
    "simrank_star_fixed_point_residual",
    "simrank_star_series",
    "simrank_star_series_bruteforce",
    "single_pair",
    "single_source",
    "single_source_reference",
    "storage_savings",
    "symmetric_inlink_path_exists",
    "symmetry_weights",
    "top_k",
    "top_pairs",
    "transition_polynomials",
]
