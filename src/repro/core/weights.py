"""Weight schemes for SimRank* (Section 3.2, "Weighted Factors").

SimRank* combines two weights per in-link path:

* a **length weight** ``w_l`` that discounts long paths. The paper
  justifies two choices — geometric ``(1-C) C^l`` (Eq. (7)) and
  exponential ``e^{-C} C^l / l!`` (Eq. (11)) — and discusses but
  rejects the harmonic ``C^l / l`` because its series does not collapse
  to a neat recurrence. All three are provided; the harmonic one feeds
  the ablation benchmark.
* a **symmetry weight** ``binom(l, alpha) / 2^l`` that favours paths
  whose in-link "source" is near the centre (``alpha ~ l/2``) over
  one-directional ones (``alpha`` = 0 or l).

Each scheme also knows its truncation error bound (Lemma 3 and
Eq. (12)), which drives :mod:`repro.core.convergence`.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.validation import validate_damping

__all__ = [
    "ExponentialWeights",
    "GeometricWeights",
    "HarmonicWeights",
    "WeightScheme",
    "symmetry_weights",
]


def symmetry_weights(length: int) -> np.ndarray:
    """The binomial symmetry weights ``binom(l, a) / 2^l`` for a in 0..l.

    Unimodal in ``a`` with the peak at the centre (symmetric source)
    and minimum 1/2^l at the ends (one-directional path); sums to 1.
    """
    if length < 0:
        raise ValueError("length must be >= 0")
    row = np.array(
        [math.comb(length, a) for a in range(length + 1)],
        dtype=np.float64,
    )
    return row / (2.0 ** length)


@dataclass(frozen=True)
class WeightScheme(abc.ABC):
    """A normalised length-weight sequence ``w_l`` with its tail bound."""

    c: float

    def __post_init__(self) -> None:
        validate_damping(self.c)

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short identifier used by benches and the CLI."""

    @abc.abstractmethod
    def length_weight(self, length: int) -> float:
        """The normalised weight ``w_l`` of in-link paths of ``length``."""

    @abc.abstractmethod
    def error_bound(self, num_terms: int) -> float:
        """Upper bound on ``||S - S_k||_max`` after ``k`` terms."""

    def length_weights(self, num_terms: int) -> np.ndarray:
        """``[w_0, ..., w_k]`` as a vector."""
        return np.array(
            [self.length_weight(l) for l in range(num_terms + 1)]
        )


class GeometricWeights(WeightScheme):
    """``w_l = (1 - C) C^l`` — the geometric SimRank* of Eq. (7)."""

    @property
    def name(self) -> str:
        return "geometric"

    def length_weight(self, length: int) -> float:
        if length < 0:
            raise ValueError("length must be >= 0")
        return (1.0 - self.c) * self.c ** length

    def error_bound(self, num_terms: int) -> float:
        # Lemma 3: ||S - S_k||_max <= C^{k+1}
        return self.c ** (num_terms + 1)


class ExponentialWeights(WeightScheme):
    """``w_l = e^{-C} C^l / l!`` — the exponential SimRank* of Eq. (11).

    Converges much faster: the tail bound ``C^{k+1} / (k+1)!`` of
    Eq. (12) beats the geometric ``C^{k+1}`` for every k, which is why
    ``memo-eSR*`` needs fewer iterations for the same accuracy.
    """

    @property
    def name(self) -> str:
        return "exponential"

    def length_weight(self, length: int) -> float:
        if length < 0:
            raise ValueError("length must be >= 0")
        return (
            math.exp(-self.c) * self.c ** length / math.factorial(length)
        )

    def error_bound(self, num_terms: int) -> float:
        # Eq. (12): ||S' - S'_k||_max <= C^{k+1} / (k+1)!
        return self.c ** (num_terms + 1) / math.factorial(num_terms + 1)


class HarmonicWeights(WeightScheme):
    """``w_l = C^l / (l ln(1/(1-C)))`` for l >= 1 — the rejected option.

    The paper notes this candidate has a simple normaliser
    (``sum C^l / l = ln 1/(1-C)``) but no neat recursive form; it
    exists here so the ablation bench can quantify what is lost.
    There is no ``l = 0`` term, so self-pairs draw no base weight.
    """

    @property
    def name(self) -> str:
        return "harmonic"

    def length_weight(self, length: int) -> float:
        if length < 0:
            raise ValueError("length must be >= 0")
        if length == 0:
            return 0.0
        normalizer = math.log(1.0 / (1.0 - self.c))
        return self.c ** length / (length * normalizer)

    def error_bound(self, num_terms: int) -> float:
        # tail sum_{l>k} C^l/l <= C^{k+1} / ((k+1)(1-C)), normalised.
        normalizer = math.log(1.0 / (1.0 - self.c))
        return self.c ** (num_terms + 1) / (
            (num_terms + 1) * (1.0 - self.c) * normalizer
        )
