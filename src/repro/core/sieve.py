"""Threshold-sieved similarities — the one Lizorkin optimisation that
ports to SimRank*.

The paper (Section 4.3) notes that of the three classic SimRank
optimisations, only *threshold-sieved similarities* carries over:
node-pairs whose scores fall below a small threshold (the experiments
use ``1e-4``) are dropped from storage "with minimal impact on
accuracy". These helpers implement the sieve and quantify its effect.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["clip_small", "sieve_to_sparse", "storage_savings"]

DEFAULT_THRESHOLD = 1e-4  # the paper's storage clip


def clip_small(
    scores: np.ndarray, threshold: float = DEFAULT_THRESHOLD
) -> np.ndarray:
    """Copy of ``scores`` with entries below ``threshold`` zeroed."""
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    clipped = scores.copy()
    clipped[clipped < threshold] = 0.0
    return clipped


def sieve_to_sparse(
    scores: np.ndarray, threshold: float = DEFAULT_THRESHOLD
) -> sp.csr_array:
    """Sieved scores as a CSR matrix — the sieve's storage payoff."""
    return sp.csr_array(clip_small(scores, threshold))


def storage_savings(
    scores: np.ndarray, threshold: float = DEFAULT_THRESHOLD
) -> float:
    """Fraction of entries the sieve discards (0 = nothing, 1 = all)."""
    if scores.size == 0:
        return 0.0
    kept = int((scores >= threshold).sum())
    return 1.0 - kept / scores.size
