"""SimRank* series forms — Eq. (7), Eq. (9), Eq. (11), Eq. (18).

The series building block is the *symmetrised transition polynomial*::

    T_l = (1 / 2^l) * sum_{a=0}^{l} binom(l, a) Q^a (Q^T)^{l-a}

whose ``(i, j)`` entry aggregates the weights of **all** in-link paths
of length ``l`` between ``i`` and ``j`` — symmetric or not. SimRank*
(any variant) is then ``sum_l w_l T_l`` for a length-weight scheme
``w_l`` (:mod:`repro.core.weights`).

``T_l`` obeys the two-sided recurrence ``T_{l+1} = (Q T_l + T_l Q^T)/2``
(the computation inside Lemma 4), so the k-term partial sum costs k
sparse-dense multiplications instead of the brute-force ``O(k^2)``
the paper mentions when motivating Section 4. A deliberately naive
evaluator is kept for cross-validation in tests.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.weights import GeometricWeights, WeightScheme
from repro.graph.digraph import DiGraph
from repro.graph.matrices import backward_transition_matrix
from repro.validation import validate_damping, validate_iterations

__all__ = [
    "simrank_star_series",
    "simrank_star_series_bruteforce",
    "transition_polynomials",
]


def transition_polynomials(
    graph: DiGraph, num_terms: int
) -> list[np.ndarray]:
    """``[T_0, ..., T_K]`` via the two-sided recurrence."""
    validate_iterations(num_terms, "num_terms")
    n = graph.num_nodes
    q = backward_transition_matrix(graph)
    terms = [np.eye(n)]
    for _ in range(num_terms):
        m = q @ terms[-1]
        terms.append(0.5 * (m + m.T))
    return terms


def simrank_star_series(
    graph: DiGraph,
    c: float = 0.6,
    num_terms: int = 5,
    weights: WeightScheme | None = None,
) -> np.ndarray:
    """Partial sum ``S_k = sum_{l<=k} w_l T_l`` of the SimRank* series.

    With the default :class:`GeometricWeights` this is Eq. (9), the
    k-th partial sum of the geometric SimRank* Eq. (7); passing
    :class:`ExponentialWeights` gives Eq. (18). Truncation error is
    bounded by ``weights.error_bound(num_terms)`` (Lemma 3 / Eq. (12)).
    """
    validate_damping(c)
    validate_iterations(num_terms, "num_terms")
    if weights is None:
        weights = GeometricWeights(c)
    elif weights.c != c:
        raise ValueError(
            f"weight scheme damping {weights.c} disagrees with c={c}"
        )
    n = graph.num_nodes
    q = backward_transition_matrix(graph)
    total = weights.length_weight(0) * np.eye(n)
    current = np.eye(n)
    for level in range(1, num_terms + 1):
        m = q @ current
        current = 0.5 * (m + m.T)
        total += weights.length_weight(level) * current
    return total


def simrank_star_series_bruteforce(
    graph: DiGraph,
    c: float = 0.6,
    num_terms: int = 5,
    weights: WeightScheme | None = None,
) -> np.ndarray:
    """Literal evaluation of Eq. (9): every ``Q^a (Q^T)^{l-a}`` product.

    Exists purely as an independent oracle for the recurrence-based
    evaluator — this is the ``O(k l^2 n^3)`` brute force the paper
    dismisses at the top of Section 4.
    """
    validate_damping(c)
    validate_iterations(num_terms, "num_terms")
    if weights is None:
        weights = GeometricWeights(c)
    elif weights.c != c:
        raise ValueError(
            f"weight scheme damping {weights.c} disagrees with c={c}"
        )
    n = graph.num_nodes
    q = backward_transition_matrix(graph).toarray()
    qt = q.T
    # q_powers[a] = Q^a, qt_powers[b] = (Q^T)^b
    q_powers = [np.eye(n)]
    qt_powers = [np.eye(n)]
    for _ in range(num_terms):
        q_powers.append(q_powers[-1] @ q)
        qt_powers.append(qt_powers[-1] @ qt)
    total = np.zeros((n, n))
    for l in range(num_terms + 1):
        inner = np.zeros((n, n))
        for a in range(l + 1):
            inner += math.comb(l, a) * (q_powers[a] @ qt_powers[l - a])
        total += weights.length_weight(l) / (2.0 ** l) * inner
    return total
