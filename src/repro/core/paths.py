"""In-link path machinery — Lemma 1, Corollaries 1-2, Figures 2 and 3.

An *in-link path* of node-pair ``(a, b)`` (Section 3.1) is a walk
``a <-^{l1} w ->^{l2} b``: ``l1`` steps against edge directions from
``a`` back to the in-link "source" ``w``, then ``l2`` steps along edge
directions to ``b``. It is *symmetric* when ``l1 = l2``.

This module provides:

* exact path counting via products of ``A`` / ``A^T`` (Lemma 1);
* exact existence matrices for symmetric in-link paths (what SimRank
  sees), directed paths (what RWR sees), and dissymmetric in-link
  paths (what only SimRank* sees) — the primitives behind the
  Figure 6(d) zero-similarity census;
* per-path contribution rates combining length and symmetry weights
  (the worked numbers 0.0384 / 0.0205 below Figure 3);
* the Figure 2 table of path shapes each measure accommodates.
"""

from __future__ import annotations

import numpy as np

from repro.core.weights import GeometricWeights, WeightScheme, symmetry_weights
from repro.graph.digraph import DiGraph
from repro.graph.matrices import adjacency_matrix

__all__ = [
    "accommodated_path_shapes",
    "count_inlink_paths",
    "count_specific_paths",
    "dissymmetric_inlink_path_exists",
    "inlink_path_exists",
    "path_contribution",
    "reachability",
    "symmetric_inlink_path_exists",
]


def count_specific_paths(graph: DiGraph, pattern: str) -> np.ndarray:
    """Lemma 1: count "specific paths" whose edge directions follow
    ``pattern``.

    ``pattern`` is a string over ``{'>', '<'}`` read left to right
    along the walk from ``i`` to ``j``: ``'>'`` is a step along an edge
    (``v_{k-1} -> v_k``, contributing a factor ``A``) and ``'<'`` a
    step against one (``v_{k-1} <- v_k``, contributing ``A^T``).
    Entry ``[i, j]`` of the result counts walks of that exact shape.

    >>> # [A (x) A^T] counts i -> * <- j patterns
    >>> from repro.graph import DiGraph
    >>> g = DiGraph(3, edges=[(0, 1), (2, 1)])
    >>> count_specific_paths(g, "><")[0, 2]
    1.0
    """
    if not pattern:
        raise ValueError("pattern must contain at least one step")
    a = adjacency_matrix(graph)
    result = None
    for step in pattern:
        if step == ">":
            factor = a
        elif step == "<":
            factor = a.T
        else:
            raise ValueError(
                f"pattern may only contain '>' and '<', got {step!r}"
            )
        result = factor if result is None else result @ factor
    return np.asarray(result.todense())


def count_inlink_paths(graph: DiGraph, l1: int, l2: int) -> np.ndarray:
    """Count in-link paths ``i <-^{l1} w ->^{l2} j``: ``(A^T)^{l1} A^{l2}``.

    ``[(A^T)^{l1} A^{l2}]_{ij}`` tallies the number of in-link paths of
    node-pair ``(i, j)`` with ``l1`` steps against and ``l2`` along
    (the example below Lemma 1).
    """
    if l1 < 0 or l2 < 0:
        raise ValueError("step counts must be >= 0")
    if l1 + l2 == 0:
        return np.eye(graph.num_nodes)
    return count_specific_paths(graph, "<" * l1 + ">" * l2)


def reachability(graph: DiGraph, include_self: bool = True) -> np.ndarray:
    """Boolean transitive closure: ``[i, j]`` iff a directed path i ~> j.

    ``include_self=True`` counts the empty path (diagonal true);
    ``False`` requires length >= 1 (diagonal true only on cycles).
    Uses logical matrix squaring, so ``O(log diameter)`` dense products.
    """
    n = graph.num_nodes
    if n == 0:
        return np.zeros((0, 0), dtype=bool)
    a = adjacency_matrix(graph)
    closure = np.asarray(a.todense()) > 0
    np.fill_diagonal(closure, True)
    while True:
        squared = (closure.astype(np.float64) @ closure) > 0
        if (squared == closure).all():
            break
        closure = squared
    if include_self:
        return closure
    at_least_one = (np.asarray(a.todense()) @ closure) > 0
    return at_least_one


def symmetric_inlink_path_exists(
    graph: DiGraph, max_depth: int | None = None
) -> np.ndarray:
    """Boolean matrix: ``[i, j]`` iff a *symmetric* in-link path exists.

    ``(i, j)`` has one iff some source ``w`` reaches both at equal
    distance ``k >= 1`` (for ``i != j``; the diagonal is trivially
    true at ``k = 0``). By Theorem 1 this is exactly the non-zero
    pattern of SimRank.

    Computed as the fixpoint of ``R <- R | (A^T R A > 0)`` from
    ``R = I``: one step extends every equidistant pair by one hop on
    both sides. ``max_depth`` caps the iteration (defaults to ``n``,
    which is always enough on acyclic graphs and safe elsewhere).
    """
    n = graph.num_nodes
    if n == 0:
        return np.zeros((0, 0), dtype=bool)
    a = adjacency_matrix(graph)
    at = a.T.tocsr()
    reach = np.eye(n, dtype=bool)
    limit = n if max_depth is None else max_depth
    for _ in range(limit):
        stepped = (at @ (reach.astype(np.float64) @ a)) > 0
        merged = reach | stepped
        if (merged == reach).all():
            break
        reach = merged
    return reach


def inlink_path_exists(graph: DiGraph) -> np.ndarray:
    """Boolean matrix: ``[i, j]`` iff *any* in-link path joins i and j.

    Equivalent to sharing a common ancestor under reachability
    (including the nodes themselves): this is the non-zero pattern of
    SimRank*, and the universe against which the zero-similarity
    census counts missed contributions.
    """
    reach = reachability(graph, include_self=True).astype(np.float64)
    return (reach.T @ reach) > 0


def dissymmetric_inlink_path_exists(graph: DiGraph) -> np.ndarray:
    """Boolean matrix: ``[i, j]`` iff a *dissymmetric* in-link path exists.

    Decomposition: an in-link path ``i <-^{k} w ->^{k + d} j`` with
    ``d >= 1`` factors through the node ``x`` at distance ``k`` on the
    ``j``-side leg: ``w`` is equidistant from ``i`` and ``x``, and
    ``x`` reaches ``j`` in ``d >= 1`` more steps. Hence::

        D = (Sym @ Reach+) > 0       (j-side longer)
        result = D | D^T             (either side longer)

    where ``Sym`` is :func:`symmetric_inlink_path_exists` (equidistant
    pairs, k >= 0) and ``Reach+`` is length->=1 reachability. These
    are the contributions SimRank provably drops (Theorem 1).
    """
    sym = symmetric_inlink_path_exists(graph).astype(np.float64)
    reach_plus = reachability(graph, include_self=False).astype(np.float64)
    longer_right = (sym @ reach_plus) > 0
    return longer_right | longer_right.T


def path_contribution(
    c: float,
    l1: int,
    l2: int,
    weights: WeightScheme | None = None,
) -> float:
    """Contribution *rate* of one in-link path shape to SimRank*.

    ``rate = w_{l1+l2} * binom(l1+l2, l1) / 2^{l1+l2}`` — the weight
    the path earns before in-degree normalisation. Reproduces the
    paper's worked examples (C = 0.8): the path
    ``h <- e <- a -> d`` (l1=2, l2=1) rates
    ``0.2 * 0.8^3 * binom(3,2)/2^3 = 0.0384`` and
    ``h <- e <- a -> b -> f -> d`` (l1=2, l2=3) rates ``0.0205``.
    """
    if l1 < 0 or l2 < 0:
        raise ValueError("step counts must be >= 0")
    if weights is None:
        weights = GeometricWeights(c)
    length = l1 + l2
    return float(
        weights.length_weight(length) * symmetry_weights(length)[l1]
    )


def accommodated_path_shapes(measure: str, length: int) -> list[tuple[int, int]]:
    """Figure 2: which ``(l1, l2)`` in-link path shapes a measure counts.

    * ``"simrank"`` — only the centred shape ``(l/2, l/2)`` (even l);
    * ``"rwr"`` — only the one-directional shape ``(0, l)``;
    * ``"simrank_star"`` — all ``l + 1`` shapes.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    if measure == "simrank":
        if length % 2 == 0:
            return [(length // 2, length // 2)]
        return []
    if measure == "rwr":
        return [(0, length)]
    if measure == "simrank_star":
        return [(a, length - a) for a in range(length + 1)]
    raise ValueError(
        "measure must be 'simrank', 'rwr' or 'simrank_star', "
        f"got {measure!r}"
    )
