"""Convergence guarantees for SimRank* (Lemma 3 and Eq. (12)).

The geometric form's k-term truncation error is bounded by ``C^{k+1}``;
the exponential form's by ``C^{k+1} / (k+1)!``. The exponential bound
is strictly smaller for every k, which is the formal reason
``memo-eSR*`` reaches a target accuracy in fewer iterations — the
effect the Figure 6(e)/(f) experiments observe as a ~3x wall-clock
advantage in the "share sums" phase.
"""

from __future__ import annotations

import math

from repro.validation import (
    validate_damping,
    validate_epsilon,
    validate_iterations,
)

__all__ = [
    "exponential_error_bound",
    "geometric_error_bound",
    "iterations_for_accuracy",
]


def geometric_error_bound(c: float, num_terms: int) -> float:
    """Lemma 3: ``||S^ - S^_k||_max <= C^{k+1}``."""
    validate_damping(c)
    validate_iterations(num_terms, "num_terms")
    return c ** (num_terms + 1)


def exponential_error_bound(c: float, num_terms: int) -> float:
    """Eq. (12): ``||S' - S'_k||_max <= C^{k+1} / (k+1)!``."""
    validate_damping(c)
    validate_iterations(num_terms, "num_terms")
    return c ** (num_terms + 1) / math.factorial(num_terms + 1)


def iterations_for_accuracy(
    c: float, epsilon: float, variant: str = "geometric"
) -> int:
    """Smallest ``K`` whose error bound is at most ``epsilon``.

    For the geometric form this is the paper's ``K = ceil(log_C eps)``;
    for the exponential form the factorial decay is searched directly
    (it typically returns a far smaller K — the paper's ``K' << K``).
    """
    validate_damping(c)
    validate_epsilon(epsilon)
    if variant == "geometric":
        return max(0, math.ceil(math.log(epsilon, c)) - 1)
    if variant == "exponential":
        k = 0
        while exponential_error_bound(c, k) > epsilon:
            k += 1
        return k
    raise ValueError(
        f"variant must be 'geometric' or 'exponential', got {variant!r}"
    )
