"""Similarity joins: all node-pairs above a score threshold, and
global top-k pairs.

The all-pairs analogue of :mod:`repro.core.queries` — the operation
behind "find every pair of near-duplicate pages / co-cited papers".
Built on the threshold sieve the paper ports from Lizorkin et al.:
scores below the threshold are exactly the ones the paper discards
from storage, so the join returns the *stored* similarity relation.
"""

from __future__ import annotations

import numpy as np

from repro.core.iterative import simrank_star
from repro.core.sieve import DEFAULT_THRESHOLD
from repro.graph.digraph import DiGraph

__all__ = ["similarity_join", "top_pairs"]


def similarity_join(
    graph: DiGraph,
    threshold: float = DEFAULT_THRESHOLD,
    c: float = 0.6,
    num_iterations: int = 10,
    scores: np.ndarray | None = None,
) -> list[tuple[int, int, float]]:
    """All unordered pairs ``(u, v), u < v`` with SimRank* >= threshold.

    Sorted by descending score (ties by pair id). ``scores`` lets a
    caller reuse a precomputed matrix; otherwise geometric SimRank* is
    computed here.
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    if scores is None:
        scores = simrank_star(graph, c, num_iterations)
    n = graph.num_nodes
    if scores.shape != (n, n):
        raise ValueError(
            f"scores shape {scores.shape} does not match graph size {n}"
        )
    iu, ju = np.triu_indices(n, k=1)
    values = scores[iu, ju]
    keep = values >= threshold
    order = np.lexsort((ju[keep], iu[keep], -values[keep]))
    return [
        (int(iu[keep][i]), int(ju[keep][i]), float(values[keep][i]))
        for i in order
    ]


def top_pairs(
    graph: DiGraph,
    k: int = 10,
    c: float = 0.6,
    num_iterations: int = 10,
    scores: np.ndarray | None = None,
) -> list[tuple[int, int, float]]:
    """The ``k`` most similar unordered node-pairs (diagonal excluded).

    This is the retrieval primitive behind the Figure 6(b) "top x%
    most similar pairs" sweeps.
    """
    if k < 0:
        raise ValueError("k must be >= 0")
    joined = similarity_join(
        graph, threshold=0.0, c=c, num_iterations=num_iterations,
        scores=scores,
    )
    return joined[:k]
