"""Ablation: length-weight schemes (Section 3.2's design discussion).

The paper argues for the geometric ``C^l`` and exponential
``C^l / l!`` length weights and *against* the harmonic ``C^l / l``
(no neat closed form). This ablation quantifies the choices:

* convergence: terms needed for eps = 1e-4 (exponential << geometric
  << harmonic is the bound ordering at C = 0.8... harmonic decays
  like geometric with a 1/l bonus, so it sits between);
* semantics: all three schemes rank node-pairs almost identically
  (Kendall vs the geometric reference), i.e. the length weight is a
  convergence/efficiency knob, not a semantics knob — supporting the
  paper's "no sanctity of the earlier choices" remark.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ranking import kendall_concordance
from repro.bench.harness import ExperimentResult
from repro.core import (
    ExponentialWeights,
    GeometricWeights,
    HarmonicWeights,
    simrank_star_series,
)
from repro.datasets import load_dataset

C = 0.8
EPSILON = 1e-4
NUM_TERMS = 15


def _terms_for_epsilon(scheme) -> int:
    k = 0
    while scheme.error_bound(k) > EPSILON and k < 500:
        k += 1
    return k


def run(fast: bool = False) -> ExperimentResult:
    """Compare the three length-weight schemes end to end."""
    graph = load_dataset("d05").graph
    schemes = {
        "geometric": GeometricWeights(C),
        "exponential": ExponentialWeights(C),
        "harmonic": HarmonicWeights(C),
    }
    result = ExperimentResult(
        name="Ablation: length-weight schemes (Section 3.2)"
    )
    scores = {
        name: simrank_star_series(graph, C, NUM_TERMS, weights=scheme)
        for name, scheme in schemes.items()
    }
    iu, ju = np.triu_indices(graph.num_nodes, k=1)
    reference = scores["geometric"][iu, ju]
    rng = np.random.default_rng(11)
    sample = rng.choice(len(reference), size=min(4000, len(reference)),
                        replace=False)
    rows = []
    agreement = {}
    terms_needed = {}
    for name, scheme in schemes.items():
        terms_needed[name] = _terms_for_epsilon(scheme)
        agreement[name] = kendall_concordance(
            scores[name][iu, ju][sample], reference[sample]
        )
        rows.append(
            {
                "scheme": name,
                f"terms for eps={EPSILON}": terms_needed[name],
                "error bound @ 5 terms": float(scheme.error_bound(5)),
                "kendall vs geometric": round(agreement[name], 4),
                "has closed form": name != "harmonic",
            }
        )
    result.tables[f"Weight schemes at C = {C} (d05 graph)"] = rows

    result.add_check(
        "exponential converges far faster than geometric "
        "(Eq. (12) vs Lemma 3)",
        terms_needed["exponential"] < terms_needed["geometric"] / 3,
    )
    result.add_check(
        "harmonic sits between exponential and geometric",
        terms_needed["exponential"]
        < terms_needed["harmonic"]
        <= terms_needed["geometric"],
    )
    result.add_check(
        "all schemes agree with geometric ranking (Kendall > 0.9)",
        min(agreement.values()) > 0.9,
    )
    result.notes.append(
        "The harmonic scheme is the paper's rejected candidate: "
        "competitive semantics but no closed/recursive form, so no "
        "O(Knm) iteration exists for it — each term must be summed "
        "explicitly."
    )
    return result
