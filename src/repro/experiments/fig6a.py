"""Figure 6(a): semantic effectiveness (Kendall / Spearman / NDCG).

Protocol (Section 5, Exp-1): stratified single-node queries; for each
query, every measure retrieves its top-k similar nodes (after the
paper's 1e-4 clip). Judged candidates are *pooled* across measures —
the standard IR pooling that mirrors the paper's expert panels, who
judged the systems' retrieved results. Kendall and Spearman score
each measure's ordering of the shared pool against ground-truth
relevance; NDCG@k scores the retrieved list against the global ideal.

Ground truth substitution: planted topic cosine replaces the paper's
human judgements (DESIGN.md). Claims checked:

1. On the *directed* citation graph, SimRank* (both variants) beats
   SR and RWR on every metric, and beats P-Rank on Spearman and NDCG.
   (P-Rank's Kendall is competitive here — out-link evidence is
   genuinely topical under cosine ground truth; the expert panels of
   the paper discounted it. Recorded as a note, not a check.)
2. On the *undirected* co-authorship graph, RWR's accuracy matches
   SimRank*'s (edge symmetry restores the paths RWR misses), and
   P-Rank's matches SimRank's exactly.
3. Geometric and exponential SimRank* score nearly identically.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import query_ground_truth, stratified_queries
from repro.analysis.ranking import (
    kendall_concordance,
    ndcg_for_scores,
    spearman_rho,
)
from repro.bench.harness import ExperimentResult
from repro.core.sieve import DEFAULT_THRESHOLD
from repro.datasets import load_dataset
from repro.measures import SEMANTIC_MEASURES

C = 0.6
ITERATIONS = 10
TOP_K = 30
METRICS = ("kendall", "spearman", "ndcg")


def _evaluate_dataset(
    name: str, num_queries: int
) -> dict[str, dict[str, float]]:
    """Mean metric per measure on one dataset (pooled candidates)."""
    ds = load_dataset(name)
    graph, topics = ds.graph, ds.topics
    n = graph.num_nodes
    queries = stratified_queries(graph, num_queries, seed=7)
    matrices = {
        label: fn(graph, C, ITERATIONS)
        for label, fn in SEMANTIC_MEASURES.items()
    }
    sums = {label: dict.fromkeys(METRICS, 0.0) for label in matrices}
    for q in queries:
        truth = query_ground_truth(topics, q)
        truth[q] = 0.0
        predictions: dict[str, np.ndarray] = {}
        pool: set[int] = set()
        for label, matrix in matrices.items():
            pred = matrix[q].copy()
            pred[q] = -1.0  # the query never judges itself
            pred[pred < DEFAULT_THRESHOLD] = 0.0
            predictions[label] = pred
            retrieved = np.lexsort((np.arange(n), -pred))[:TOP_K]
            pool.update(retrieved[pred[retrieved] > 0].tolist())
        pool_idx = np.fromiter(sorted(pool), dtype=np.intp)
        for label, pred in predictions.items():
            if pool_idx.size >= 2:
                sums[label]["kendall"] += kendall_concordance(
                    pred[pool_idx], truth[pool_idx]
                )
                sums[label]["spearman"] += spearman_rho(
                    pred[pool_idx], truth[pool_idx]
                )
            else:  # nothing retrieved by anyone: vacuous success
                sums[label]["kendall"] += 1.0
                sums[label]["spearman"] += 1.0
            sums[label]["ndcg"] += ndcg_for_scores(pred, truth, p=TOP_K)
    return {
        label: {m: v / len(queries) for m, v in per.items()}
        for label, per in sums.items()
    }


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Figure 6(a) on the CitHepTh- and DBLP-like graphs."""
    num_queries = 20 if fast else 100
    result = ExperimentResult(name="Figure 6(a): semantic effectiveness")
    accuracy: dict[str, dict] = {}
    for dataset in ("cit-hepth", "dblp"):
        accuracy[dataset] = _evaluate_dataset(dataset, num_queries)
        rows = [
            {"Measure": label, **{m: round(v, 3) for m, v in per.items()}}
            for label, per in accuracy[dataset].items()
        ]
        result.tables[f"{dataset} ({num_queries} queries)"] = rows

    cit = accuracy["cit-hepth"]
    dblp = accuracy["dblp"]
    for metric in METRICS:
        for baseline in ("SR", "RWR"):
            for ours in ("gSR*", "eSR*"):
                result.add_check(
                    f"cit-hepth {metric}: {ours} > {baseline}",
                    cit[ours][metric] > cit[baseline][metric],
                )
        result.add_check(
            f"cit-hepth {metric}: |gSR* - eSR*| small",
            abs(cit["gSR*"][metric] - cit["eSR*"][metric]) < 0.06,
        )
        result.add_check(
            f"dblp {metric}: RWR matches SimRank* (undirected graph)",
            abs(dblp["RWR"][metric] - dblp["gSR*"][metric]) < 0.06,
        )
        result.add_check(
            f"dblp {metric}: PR matches SR (undirected graph)",
            abs(dblp["PR"][metric] - dblp["SR"][metric]) < 0.01,
        )
    for metric in ("spearman", "ndcg"):
        result.add_check(
            f"cit-hepth {metric}: gSR* > PR",
            cit["gSR*"][metric] > cit["PR"][metric],
        )
    result.notes.append(
        "Ground truth = planted topic cosine, judged over a pooled "
        "candidate set (stands in for the paper's expert panels). "
        "Absolute values differ from the paper; the ordering claims "
        "are what is checked."
    )
    result.notes.append(
        "Deviation: P-Rank's Kendall is competitive with SimRank* "
        "here because cosine ground truth credits out-link evidence "
        "that the paper's co-citation experts discounted."
    )
    return result
