"""Figure 6(c): average similarity of role-grouped node-pairs.

Nodes are ranked by role proxy (#-citation / H-index) and cut into
ten deciles; averages run over *stored* pairs (score >= the paper's
1e-4 storage clip). The paper's claims:

* *within* a decile, SimRank*'s average similarity is **stable**
  across deciles, while SimRank's fluctuates;
* *across* deciles on the citation graph, SimRank*'s average
  similarity **decreases** as the decile gap grows, while SimRank's
  stays flat — "approaching random scoring".
"""

from __future__ import annotations

import numpy as np
import scipy.stats

from repro.analysis import grouped_similarity
from repro.bench.harness import ExperimentResult
from repro.core.sieve import DEFAULT_THRESHOLD
from repro.datasets import load_dataset
from repro.measures import SEMANTIC_MEASURES

C = 0.6
ITERATIONS = 10
NUM_GROUPS = 10
MEASURE_SUBSET = ("eSR*", "RWR", "SR")  # the measures Figure 6(c) plots
MIN_DELTA = 3  # the paper's x-axis starts at decile (gap) 3


def _stability(values: dict) -> float:
    """Coefficient of variation — low = the 'stable line' claim."""
    arr = np.array(list(values.values()))
    mean = arr.mean()
    return float(arr.std() / mean) if mean > 0 else float("inf")


def _trend(cross: dict) -> float:
    """Spearman correlation of cross-average vs decile gap."""
    if len(cross) < 3:
        return float("nan")
    deltas = sorted(cross)
    return float(
        scipy.stats.spearmanr(deltas, [cross[d] for d in deltas]).statistic
    )


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Figure 6(c) on both role-labelled datasets."""
    result = ExperimentResult(
        name="Figure 6(c): grouped within/cross-role similarity"
    )
    grouped_all: dict[str, dict[str, tuple[dict, dict]]] = {}
    for dataset_name in ("cit-hepth", "dblp"):
        ds = load_dataset(dataset_name)
        grouped: dict[str, tuple[dict, dict]] = {}
        for label in MEASURE_SUBSET:
            scores = SEMANTIC_MEASURES[label](ds.graph, C, ITERATIONS)
            grouped[label] = grouped_similarity(
                scores,
                ds.node_attribute,
                num_groups=NUM_GROUPS,
                min_score=DEFAULT_THRESHOLD,
            )
        grouped_all[dataset_name] = grouped
        rows = []
        for label, (within, cross) in grouped.items():
            rows.append(
                {
                    "Measure": f"{label} (within)",
                    **{
                        str(g): round(v, 4)
                        for g, v in within.items()
                        if g >= MIN_DELTA
                    },
                }
            )
            rows.append(
                {
                    "Measure": f"{label} (cross)",
                    **{
                        str(d): round(v, 4)
                        for d, v in cross.items()
                        if d >= MIN_DELTA
                    },
                }
            )
        result.tables[
            f"{dataset_name}: avg similarity by decile "
            f"({ds.attribute_name}, stored pairs)"
        ] = rows

    cit = grouped_all["cit-hepth"]
    result.add_check(
        "cit-hepth: eSR* within-role averages more stable than SR's",
        _stability(cit["eSR*"][0]) < _stability(cit["SR"][0]),
    )
    result.add_check(
        "cit-hepth: eSR* cross-role similarity decreases with gap",
        _trend(cit["eSR*"][1]) <= -0.5,
    )
    result.add_check(
        "cit-hepth: SR's cross-role trend is flatter (near random)",
        _trend(cit["SR"][1]) > _trend(cit["eSR*"][1]),
    )
    dblp = grouped_all["dblp"]
    result.add_check(
        "dblp: eSR* within-role averages more stable than RWR's",
        _stability(dblp["eSR*"][0]) < _stability(dblp["RWR"][0]),
    )
    result.notes.append(
        "Averages run over stored pairs (>= 1e-4), matching the "
        "paper's storage clip; columns start at decile/gap 3 as in "
        "its plot."
    )
    result.notes.append(
        "Deviation: on the DBLP stand-in the cross-role trend is not "
        "decreasing — the scaled collaboration model is "
        "degree-disassortative (leads team with arbitrary topical "
        "partners), unlike real DBLP where prominent authors "
        "co-publish with prominent authors."
    )
    return result
