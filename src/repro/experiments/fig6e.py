"""Figure 6(e): time efficiency of the five implementations.

Three panels, as in the paper: the growing DBLP snapshots at fixed
accuracy eps = 0.001, and iteration sweeps on the Web-Google and
CitPatent stand-ins. Two cost columns are reported:

* wall-clock seconds (scipy sparse kernels), and
* the machine-independent operation count of the paper's cost model
  (additions + assignments: ``2 K n m`` for psum-SR, ``K n m`` for
  iter-gSR*, ``K n m~`` for the memo variants).

Checks target the right column for each claim: the eSR*-vs-baseline
wall-clock speedups reproduce at this scale (the paper's 2.6x / 3.1x
over psum-SR on Web-Google / CitPatent), while memo-gSR*'s advantage
over iter-gSR* shows in the operation counts — at laptop scale its
1-17% edge-count saving is smaller than sparse-kernel call overhead
(the paper's graphs compress 30-50%), a deviation noted in the
output.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentResult, timed
from repro.bigraph import compress_graph
from repro.baselines.psum import psum_operation_count
from repro.core import (
    iterations_for_accuracy,
    memo_operation_count,
    multi_source,
    single_source_reference,
)
from repro.datasets import load_dataset
from repro.graph.matrices import backward_transition_matrix
from repro.measures import TIMED_ALGORITHMS

C = 0.6
EPSILON = 1e-3


def _iterations(label: str, epsilon: float = EPSILON) -> int:
    variant = "exponential" if "eSR" in label else "geometric"
    return iterations_for_accuracy(C, epsilon, variant)


def _operation_count(label: str, graph, k: int) -> int | None:
    if label == "psum-SR":
        return psum_operation_count(graph, k)
    if label == "iter-gSR*":
        return k * graph.num_nodes * graph.num_edges
    if label.startswith("memo"):
        return memo_operation_count(compress_graph(graph), k)
    return None  # mtx-SR has no comparable additive cost model


def _panel_fixed_epsilon(result: ExperimentResult) -> dict:
    times: dict[str, dict[str, float]] = {}
    rows = []
    for name in ("d05", "d08", "d11"):
        graph = load_dataset(name).graph
        row: dict = {"Dataset": name}
        times[name] = {}
        for label, fn in TIMED_ALGORITHMS.items():
            k = _iterations(label)
            _, seconds = timed(fn, graph, C, k)
            times[name][label] = seconds
            row[label + " (s)"] = round(seconds, 3)
            ops = _operation_count(label, graph, k)
            if ops is not None:
                row[label + " ops"] = ops
        rows.append(row)
    result.tables[
        f"DBLP snapshots at eps = {EPSILON} (K_geo = "
        f"{_iterations('iter-gSR*')}, K_exp = {_iterations('memo-eSR*')})"
    ] = rows
    return times


def _panel_k_sweep(
    result: ExperimentResult, dataset: str, k_values: tuple[int, ...]
) -> dict:
    graph = load_dataset(dataset).graph
    labels = [l for l in TIMED_ALGORITHMS if l != "mtx-SR"]
    times: dict[int, dict[str, float]] = {}
    rows = []
    for k in k_values:
        row: dict = {"K": k}
        times[k] = {}
        for label in labels:
            _, seconds = timed(TIMED_ALGORITHMS[label], graph, C, k)
            times[k][label] = seconds
            row[label + " (s)"] = round(seconds, 3)
        rows.append(row)
    result.tables[f"{dataset}: elapsed time vs K"] = rows
    return times


def _panel_epsilon_matched(result: ExperimentResult) -> dict:
    """Accuracy-matched comparison on the two large stand-ins.

    The exponential variant's factorial convergence means far fewer
    iterations for the same eps — this is where the paper's headline
    speedups (2.6x / 3.1x over psum-SR) come from.
    """
    labels = [l for l in TIMED_ALGORITHMS if l != "mtx-SR"]
    times: dict[str, dict[str, float]] = {}
    rows = []
    for name in ("web-google", "cit-patent"):
        graph = load_dataset(name).graph
        times[name] = {}
        row: dict = {"Dataset": name}
        for label in labels:
            k = _iterations(label)
            _, seconds = timed(TIMED_ALGORITHMS[label], graph, C, k)
            times[name][label] = seconds
            row[f"{label} (s, K={k})"] = round(seconds, 3)
        rows.append(row)
    result.tables[f"Accuracy-matched runs at eps = {EPSILON}"] = rows
    return times


def _panel_query_serving(
    result: ExperimentResult, fast: bool
) -> tuple[float, float]:
    """Single-node query serving: per-query series walk vs the blocked
    multi-source kernel (:mod:`repro.core.multi_source`).

    This is the evaluation's own workload ("we mainly focus on
    single-node queries") served two ways over identical precomputed
    transition matrices; the paper's figures stop at all-pairs
    builds, so this panel is repo-specific.
    """
    graph = load_dataset("web-google").graph
    num_terms = _iterations("iter-gSR*")
    batch = 16 if fast else 64
    rng = np.random.default_rng(606)
    queries = [
        int(v)
        for v in rng.choice(graph.num_nodes, size=batch, replace=False)
    ]
    q = backward_transition_matrix(graph)
    qt = q.T.tocsr()

    def loop():
        return [
            single_source_reference(
                graph, v, C, num_terms, transition=q, transition_t=qt
            )
            for v in queries
        ]

    loop_columns, loop_seconds = timed(loop)
    block, blocked_seconds = timed(
        multi_source,
        graph,
        queries,
        C,
        num_terms,
        transition=q,
        transition_t=qt,
    )
    max_err = max(
        float(np.abs(block[:, j] - col).max())
        for j, col in enumerate(loop_columns)
    )
    result.tables[
        f"web-google: serving {batch} single-node queries "
        f"(L = {num_terms})"
    ] = [
        {
            "Strategy": "per-query series walk",
            "total (s)": round(loop_seconds, 4),
            "per query (ms)": round(1e3 * loop_seconds / batch, 3),
        },
        {
            "Strategy": "blocked multi-source",
            "total (s)": round(blocked_seconds, 4),
            "per query (ms)": round(1e3 * blocked_seconds / batch, 3),
        },
    ]
    result.add_check(
        "web-google: blocked multi-source kernel at least 2x faster "
        "than the per-query walk",
        loop_seconds >= 2.0 * blocked_seconds,
    )
    result.add_check(
        "web-google: blocked kernel matches the per-query walk "
        "(max |diff| < 1e-10)",
        max_err < 1e-10,
    )
    return loop_seconds, blocked_seconds


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate the three Figure 6(e) panels plus the query-serving
    panel built on the blocked multi-source kernel."""
    result = ExperimentResult(name="Figure 6(e): time efficiency")
    dblp_times = _panel_fixed_epsilon(result)
    web_ks = (5, 10) if fast else (5, 10, 15, 20)
    pat_ks = (3, 6) if fast else (3, 6, 9, 12)
    web_times = _panel_k_sweep(result, "web-google", web_ks)
    pat_times = _panel_k_sweep(result, "cit-patent", pat_ks)
    eps_times = _panel_epsilon_matched(result)
    loop_seconds, blocked_seconds = _panel_query_serving(result, fast)

    # --- wall-clock claims that reproduce at laptop scale ------------
    for name in ("d05", "d08", "d11"):
        result.add_check(
            f"{name}: psum-SR slower than iter-gSR* (double vs single "
            "summation)",
            dblp_times[name]["psum-SR"] > dblp_times[name]["iter-gSR*"],
        )
    result.add_check(
        "d11: mtx-SR is the slowest SimRank solver (costly SVD)",
        dblp_times["d11"]["mtx-SR"]
        > max(
            dblp_times["d11"]["psum-SR"], dblp_times["d11"]["iter-gSR*"]
        ),
    )
    for sweep_name, sweep in (
        ("web-google", web_times),
        ("cit-patent", pat_times),
    ):
        ks = sorted(sweep)
        for algo in ("memo-eSR*", "memo-gSR*", "iter-gSR*", "psum-SR"):
            # endpoint comparison with slack: per-point wall clock is
            # noisy, but a linear-in-K iteration must cost clearly
            # more at 3-4x the iterations. memo-eSR* gets a smaller
            # factor: its K-independent tail (bigraph compression and
            # the dense T T^T of Eq. (19)) dominates the total now
            # that the allocation-free loop has shrunk the per-K cost,
            # so growth is strictly positive but shallow at small K.
            factor = 1.05 if algo == "memo-eSR*" else 1.2
            result.add_check(
                f"{sweep_name} {algo}: time grows from K={ks[0]} to "
                f"K={ks[-1]} (linear-in-K iteration)",
                sweep[ks[-1]][algo] > factor * sweep[ks[0]][algo],
            )
    for k in sorted(web_times):
        result.add_check(
            f"web-google K={k}: psum-SR slower than iter-gSR* "
            "(two products vs one)",
            web_times[k]["psum-SR"] > web_times[k]["iter-gSR*"],
        )
    for name in ("web-google", "cit-patent"):
        result.add_check(
            f"{name} (eps-matched): memo-eSR* is the fastest variant",
            eps_times[name]["memo-eSR*"] == min(eps_times[name].values()),
        )
    speedup_web = (
        eps_times["web-google"]["psum-SR"]
        / eps_times["web-google"]["memo-eSR*"]
    )
    result.add_check(
        "web-google: memo-eSR* at least 2x faster than psum-SR "
        "(paper: 2.6x)",
        speedup_web >= 2.0,
    )
    speedup_pat = (
        eps_times["cit-patent"]["psum-SR"]
        / eps_times["cit-patent"]["memo-eSR*"]
    )
    result.add_check(
        "cit-patent: memo-eSR* at least 2x faster than psum-SR "
        "(paper: 3.1x)",
        speedup_pat >= 2.0,
    )

    # --- operation-count claims (machine independent) -----------------
    for name in ("d05", "d08", "d11"):
        graph = load_dataset(name).graph
        k = _iterations("iter-gSR*")
        memo_ops = _operation_count("memo-gSR*", graph, k)
        iter_ops = _operation_count("iter-gSR*", graph, k)
        psum_ops = _operation_count("psum-SR", graph, k)
        result.add_check(
            f"{name}: operation counts memo-gSR* < iter-gSR* < psum-SR",
            memo_ops < iter_ops < psum_ops,
        )
    result.notes.append(
        f"measured speedups: memo-eSR* vs psum-SR = {speedup_web:.1f}x "
        f"on web-google (paper 2.6x), {speedup_pat:.1f}x on cit-patent "
        "(paper 3.1x)."
    )
    result.notes.append(
        "query serving: blocked multi-source kernel is "
        f"{loop_seconds / blocked_seconds:.1f}x faster than the "
        "per-query series walk on web-google."
    )
    result.notes.append(
        "Deviation: memo-gSR*'s wall-clock advantage over iter-gSR* "
        "does not materialise at this scale — the stand-ins compress "
        "only 1-17% (the paper's corpora reach 30-50%), which sparse-"
        "kernel call overhead absorbs; the operation-count column "
        "shows the per-iteration saving the paper reports."
    )
    return result
