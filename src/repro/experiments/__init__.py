"""Experiment drivers: one module per table/figure of the paper.

Each module exposes ``run(fast: bool = False) -> ExperimentResult``;
``fast=True`` trims query counts and sweep lengths for CI. The CLI
(``python -m repro.experiments <id>`` or ``repro-experiments <id>``)
prints the paper-style tables and the shape-check verdicts.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.bench.harness import ExperimentResult

__all__ = ["EXPERIMENTS", "main", "run_experiment"]


def _lazy(module_name: str) -> Callable[[bool], ExperimentResult]:
    def runner(fast: bool = False) -> ExperimentResult:
        import importlib

        module = importlib.import_module(f"repro.experiments.{module_name}")
        return module.run(fast=fast)

    return runner


EXPERIMENTS: dict[str, Callable[[bool], ExperimentResult]] = {
    "fig1": _lazy("fig1"),
    "fig5": _lazy("fig5"),
    "fig6a": _lazy("fig6a"),
    "fig6b": _lazy("fig6b"),
    "fig6c": _lazy("fig6c"),
    "fig6d": _lazy("fig6d"),
    "fig6e": _lazy("fig6e"),
    "fig6f": _lazy("fig6f"),
    "fig6g": _lazy("fig6g"),
    "fig6h": _lazy("fig6h"),
    "abl-weights": _lazy("ablation_weights"),
    "abl-biclique": _lazy("ablation_biclique"),
}


def run_experiment(name: str, fast: bool = False) -> ExperimentResult:
    """Run the experiment registered as ``name``."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {list(EXPERIMENTS)}"
        ) from None
    return runner(fast)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``repro-experiments fig6a [--fast]``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id(s), or 'all'",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced query counts / sweep sizes",
    )
    args = parser.parse_args(argv)
    names = (
        list(EXPERIMENTS)
        if "all" in args.experiment
        else args.experiment
    )
    exit_code = 0
    for name in names:
        result = run_experiment(name, fast=args.fast)
        print(result.render())
        print()
        if result.failed_checks():
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
