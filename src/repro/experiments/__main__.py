"""``python -m repro.experiments`` dispatch."""

import sys

from repro.experiments import main

if __name__ == "__main__":
    sys.exit(main())
