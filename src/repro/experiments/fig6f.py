"""Figure 6(f): amortized time of the two memo-SR* phases.

Splits each memoized run into its "Compress Bigraph" (preprocessing,
Algorithm 1 lines 1-2) and "Share Sums" (iterations) phases on the
two large stand-ins. The paper's claims:

* preprocessing is much cheaper than iterating (an order of magnitude
  on Web-Google, ~2.5 orders on CitPatent);
* the compress phase takes a *larger share* of memo-eSR*'s total than
  of memo-gSR*'s (same preprocessing, fewer iterations), because
  eSR*'s "Share Sums" phase is ~3-4x shorter.

A repo-specific panel extends the same amortization lens to query
serving: the engine's ``batch_top_k`` pays for its precomputation
(transition build) once and walks all fresh columns through the
blocked multi-source kernel, so per-query cost falls as the batch
grows.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentResult, timed
from repro.core import run_memo_esr, run_memo_gsr
from repro.datasets import load_dataset
from repro.engine import SimilarityEngine

C = 0.6
EPSILON = 1e-3
DATASETS = ("web-google", "cit-patent")


def _panel_batch_amortization(
    result: ExperimentResult, fast: bool
) -> dict[int, float]:
    """Per-query amortized serving cost vs batch size (blocked kernel)."""
    graph = load_dataset("web-google").graph
    sizes = (1, 8, 32) if fast else (1, 16, 64)
    rng = np.random.default_rng(607)
    queries = [
        int(v)
        for v in rng.choice(graph.num_nodes, size=max(sizes),
                            replace=False)
    ]
    per_query: dict[int, float] = {}
    rows = []
    for batch in sizes:
        # a fresh engine per point: each measurement pays the full
        # cold-start (transition build + blocked walk), which is what
        # amortization means here
        engine = SimilarityEngine(
            graph, measure="gSR*", c=C, epsilon=EPSILON
        )
        _, seconds = timed(engine.batch_top_k, queries[:batch], 10)
        per_query[batch] = seconds / batch
        rows.append(
            {
                "Batch size": batch,
                "total (s)": round(seconds, 4),
                "per query (ms)": round(1e3 * per_query[batch], 3),
            }
        )
    result.tables[
        "web-google: engine batch_top_k cold-start, per-query "
        "amortized cost"
    ] = rows
    result.add_check(
        "web-google: per-query cost at the largest batch is at least "
        "2x below the single-query cost (blocked kernel amortizes)",
        per_query[sizes[0]] >= 2.0 * per_query[sizes[-1]],
    )
    return per_query


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Figure 6(f) phase splits."""
    result = ExperimentResult(
        name="Figure 6(f): amortized time per phase"
    )
    runs: dict[tuple[str, str], object] = {}
    rows = []
    for dataset in DATASETS:
        graph = load_dataset(dataset).graph
        for label, runner in (
            ("memo-eSR*", run_memo_esr),
            ("memo-gSR*", run_memo_gsr),
        ):
            outcome = runner(graph, C, num_iterations=None, epsilon=EPSILON)
            runs[(dataset, label)] = outcome
            share = outcome.compress_seconds / outcome.total_seconds
            rows.append(
                {
                    "Dataset": dataset,
                    "Algorithm": label,
                    "Compress Bigraph (s)": round(
                        outcome.compress_seconds, 3
                    ),
                    "Share Sums (s)": round(outcome.iterate_seconds, 3),
                    "compress share %": round(100 * share, 1),
                }
            )
    result.tables[f"Phase split at eps = {EPSILON}"] = rows

    for dataset in DATASETS:
        esr = runs[(dataset, "memo-eSR*")]
        gsr = runs[(dataset, "memo-gSR*")]
        result.add_check(
            f"{dataset}: compressing is cheaper than iterating "
            "(both variants)",
            esr.compress_seconds < esr.iterate_seconds
            and gsr.compress_seconds < gsr.iterate_seconds,
        )
        result.add_check(
            f"{dataset}: compress phase is a larger share of "
            "memo-eSR* than of memo-gSR*",
            esr.compress_seconds / esr.total_seconds
            > gsr.compress_seconds / gsr.total_seconds,
        )
        # eSR*'s phase includes the K-independent dense T T^T of
        # Eq. (19), which caps the measurable ratio on the larger
        # stand-in well below the paper's iteration-count ratio — so
        # the floor is 2x where iterations dominate (web-google) and
        # 1.4x where the dense tail does (cit-patent).
        floor = 2.0 if dataset == "web-google" else 1.4
        result.add_check(
            f"{dataset}: memo-eSR* 'Share Sums' at least {floor}x "
            "shorter than memo-gSR*'s (paper: 3.5-3.8x)",
            gsr.iterate_seconds >= floor * esr.iterate_seconds,
        )
    result.add_check(
        "compress share smaller on cit-patent than web-google "
        "(paper: 0.1-0.3% vs 4-13%)",
        runs[("cit-patent", "memo-gSR*")].compress_seconds
        / runs[("cit-patent", "memo-gSR*")].total_seconds
        < runs[("web-google", "memo-gSR*")].compress_seconds
        / runs[("web-google", "memo-gSR*")].total_seconds,
    )
    _panel_batch_amortization(result, fast)
    return result
