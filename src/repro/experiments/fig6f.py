"""Figure 6(f): amortized time of the two memo-SR* phases.

Splits each memoized run into its "Compress Bigraph" (preprocessing,
Algorithm 1 lines 1-2) and "Share Sums" (iterations) phases on the
two large stand-ins. The paper's claims:

* preprocessing is much cheaper than iterating (an order of magnitude
  on Web-Google, ~2.5 orders on CitPatent);
* the compress phase takes a *larger share* of memo-eSR*'s total than
  of memo-gSR*'s (same preprocessing, fewer iterations), because
  eSR*'s "Share Sums" phase is ~3-4x shorter.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.core import run_memo_esr, run_memo_gsr
from repro.datasets import load_dataset

C = 0.6
EPSILON = 1e-3
DATASETS = ("web-google", "cit-patent")


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Figure 6(f) phase splits."""
    result = ExperimentResult(
        name="Figure 6(f): amortized time per phase"
    )
    runs: dict[tuple[str, str], object] = {}
    rows = []
    for dataset in DATASETS:
        graph = load_dataset(dataset).graph
        for label, runner in (
            ("memo-eSR*", run_memo_esr),
            ("memo-gSR*", run_memo_gsr),
        ):
            outcome = runner(graph, C, num_iterations=None, epsilon=EPSILON)
            runs[(dataset, label)] = outcome
            share = outcome.compress_seconds / outcome.total_seconds
            rows.append(
                {
                    "Dataset": dataset,
                    "Algorithm": label,
                    "Compress Bigraph (s)": round(
                        outcome.compress_seconds, 3
                    ),
                    "Share Sums (s)": round(outcome.iterate_seconds, 3),
                    "compress share %": round(100 * share, 1),
                }
            )
    result.tables[f"Phase split at eps = {EPSILON}"] = rows

    for dataset in DATASETS:
        esr = runs[(dataset, "memo-eSR*")]
        gsr = runs[(dataset, "memo-gSR*")]
        result.add_check(
            f"{dataset}: compressing is cheaper than iterating "
            "(both variants)",
            esr.compress_seconds < esr.iterate_seconds
            and gsr.compress_seconds < gsr.iterate_seconds,
        )
        result.add_check(
            f"{dataset}: compress phase is a larger share of "
            "memo-eSR* than of memo-gSR*",
            esr.compress_seconds / esr.total_seconds
            > gsr.compress_seconds / gsr.total_seconds,
        )
        result.add_check(
            f"{dataset}: memo-eSR* 'Share Sums' at least 2x shorter "
            "than memo-gSR*'s (paper: 3.5-3.8x)",
            gsr.iterate_seconds >= 2.0 * esr.iterate_seconds,
        )
    result.add_check(
        "compress share smaller on cit-patent than web-google "
        "(paper: 0.1-0.3% vs 4-13%)",
        runs[("cit-patent", "memo-gSR*")].compress_seconds
        / runs[("cit-patent", "memo-gSR*")].total_seconds
        < runs[("web-google", "memo-gSR*")].compress_seconds
        / runs[("web-google", "memo-gSR*")].total_seconds,
    )
    return result
