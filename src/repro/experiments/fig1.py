"""Figure 1: the motivating table of node-pair similarities.

Recomputes SR / PR / SR* / RWR for the seven node-pairs of the paper's
11-node citation graph at C = 0.8, checks the three columns we can pin
exactly (SR, PR, SR* — all matrix-form fixed points printed to three
decimals) and RWR's zero pattern.
"""

from __future__ import annotations

from repro.baselines import prank_matrix, rwr, simrank_matrix
from repro.bench.harness import ExperimentResult
from repro.core import simrank_star
from repro.graph import figure1_citation_graph

PAIRS = [
    ("h", "d"),
    ("a", "f"),
    ("a", "c"),
    ("g", "a"),
    ("g", "b"),
    ("i", "a"),
    ("i", "h"),
]

# The paper's printed values (3 decimals).
PAPER = {
    ("h", "d"): {"SR": 0.0, "PR": 0.049, "SR*": 0.010, "RWR": 0.0},
    ("a", "f"): {"SR": 0.0, "PR": 0.075, "SR*": 0.032, "RWR": 0.032},
    ("a", "c"): {"SR": 0.0, "PR": 0.0, "SR*": 0.025, "RWR": 0.024},
    ("g", "a"): {"SR": 0.0, "PR": 0.0, "SR*": 0.025, "RWR": 0.0},
    ("g", "b"): {"SR": 0.0, "PR": 0.0, "SR*": 0.075, "RWR": 0.0},
    ("i", "a"): {"SR": 0.0, "PR": 0.0, "SR*": 0.015, "RWR": 0.0},
    ("i", "h"): {"SR": 0.044, "PR": 0.041, "SR*": 0.031, "RWR": 0.0},
}

C = 0.8
ITERATIONS = 100  # converged


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate the Figure 1 table."""
    g = figure1_citation_graph()
    sr = simrank_matrix(g, C, ITERATIONS)
    pr = prank_matrix(g, C, 0.5, ITERATIONS)
    srs = simrank_star(g, C, ITERATIONS)
    rw = rwr(g, C, ITERATIONS)

    result = ExperimentResult(name="Figure 1: similarities on the citation graph")
    rows = []
    for x, y in PAIRS:
        i, j = g.node_of(x), g.node_of(y)
        rows.append(
            {
                "Node-Pair": f"({x}, {y})",
                "SR": round(float(sr[i, j]), 3),
                "PR": round(float(pr[i, j]), 3),
                "SR*": round(float(srs[i, j]), 3),
                "RWR": round(float(rw[i, j]), 3),
                "paper SR": PAPER[(x, y)]["SR"],
                "paper PR": PAPER[(x, y)]["PR"],
                "paper SR*": PAPER[(x, y)]["SR*"],
                "paper RWR": PAPER[(x, y)]["RWR"],
            }
        )
    result.tables["Figure 1 (C = 0.8)"] = rows

    for x, y in PAIRS:
        i, j = g.node_of(x), g.node_of(y)
        paper_row = PAPER[(x, y)]
        result.add_check(
            f"SR({x},{y}) = {paper_row['SR']}",
            abs(sr[i, j] - paper_row["SR"]) < 1e-3,
        )
        result.add_check(
            f"PR({x},{y}) = {paper_row['PR']}",
            abs(pr[i, j] - paper_row["PR"]) < 1e-3,
        )
        result.add_check(
            f"SR*({x},{y}) = {paper_row['SR*']}",
            abs(srs[i, j] - paper_row["SR*"]) < 1.1e-3,
        )
        # RWR's implementation details in the paper are unclear for
        # the two non-zero entries; the structural zeros must agree.
        want_zero = paper_row["RWR"] == 0.0
        result.add_check(
            f"RWR({x},{y}) {'=' if want_zero else '!='} 0",
            (rw[i, j] < 1e-12) == want_zero,
        )
    result.notes.append(
        "SR / PR / SR* columns match the paper to its printed 3 "
        "decimals; RWR is checked on its zero pattern (the paper's "
        "RWR normalisation for the two non-zero entries is "
        "unspecified)."
    )
    return result
