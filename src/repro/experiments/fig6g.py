"""Figure 6(g): effect of graph density on computation time.

Fixes the node count and sweeps density d = m/n (the paper: n = 350K,
d = 10..40; here n = 350 scaled). Denser graphs overlap more
in-neighbourhoods, so edge concentration bites harder — the paper
reports compression ratios rising to 52.7% at d = 40 and the memo
variants' speedups growing with density.

Checks: the compression ratio rises monotonically with density
(the annotated percentages of the paper's plot), memo-gSR*'s
operation-count saving over iter-gSR*/psum-SR widens with density,
and memo-eSR* stays the fastest variant wall-clock at the highest
density.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, timed
from repro.bigraph import compress_graph
from repro.baselines.psum import psum_operation_count
from repro.core import iterations_for_accuracy, memo_operation_count
from repro.graph import rmat
from repro.measures import TIMED_ALGORITHMS

C = 0.6
EPSILON = 1e-3
SCALE = 9  # 512 nodes — the paper's 350K synthetic, scaled
DENSITIES = (10, 20, 30, 40)
LABELS = ("memo-eSR*", "memo-gSR*", "iter-gSR*", "psum-SR")


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate the Figure 6(g) density sweep."""
    densities = DENSITIES[:2] if fast else DENSITIES
    k_geo = iterations_for_accuracy(C, EPSILON, "geometric")
    k_exp = iterations_for_accuracy(C, EPSILON, "exponential")
    result = ExperimentResult(
        name="Figure 6(g): effect of density on time"
    )
    rows = []
    ratios: list[float] = []
    op_speedups: list[float] = []
    wall: dict[int, dict[str, float]] = {}
    num_nodes = 1 << SCALE
    for density in densities:
        graph = rmat(SCALE, density * num_nodes, seed=17)
        compressed = compress_graph(graph)
        ratios.append(compressed.compression_ratio)
        memo_ops = memo_operation_count(compressed, k_geo)
        psum_ops = psum_operation_count(graph, k_geo)
        iter_ops = k_geo * graph.num_nodes * graph.num_edges
        op_speedups.append(iter_ops / memo_ops)
        wall[density] = {}
        row: dict = {
            "d = m/n": density,
            "compression %": round(100 * compressed.compression_ratio, 1),
        }
        for label in LABELS:
            k = k_exp if "eSR" in label else k_geo
            _, seconds = timed(TIMED_ALGORITHMS[label], graph, C, k)
            wall[density][label] = seconds
            row[label + " (s)"] = round(seconds, 3)
        row["memo/iter op saving"] = round(op_speedups[-1], 2)
        row["psum ops / memo ops"] = round(psum_ops / memo_ops, 2)
        rows.append(row)
    result.tables[
        f"n = {num_nodes} (R-MAT, the GTgraph power-law model), "
        f"eps = {EPSILON} (K_geo = {k_geo})"
    ] = rows

    result.add_check(
        "compression ratio rises monotonically with density "
        "(paper: 30 -> 53%)",
        all(a < b for a, b in zip(ratios, ratios[1:])),
    )
    result.add_check(
        "densest graph compresses at least 30%",
        ratios[-1] >= 0.30,
    )
    result.add_check(
        "memo-gSR*'s operation saving over iter-gSR* widens with "
        "density",
        all(a < b for a, b in zip(op_speedups, op_speedups[1:])),
    )
    densest = densities[-1]
    result.add_check(
        f"d = {densest}: psum-SR slower than iter-gSR* wall-clock",
        wall[densest]["psum-SR"] > wall[densest]["iter-gSR*"],
    )
    result.notes.append(
        "Operation counts are the paper's addition+assignment cost "
        "model; at n = 512 the Python biclique-mining preprocessing "
        "dominates memo wall-clock, so the op-count columns carry the "
        "scaling claims (the paper's C++ preprocessing is a vanishing "
        "fraction, cf. Figure 6(f))."
    )
    return result
