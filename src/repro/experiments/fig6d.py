"""Figure 6(d): how widespread zero-similarity issues are.

Counts, on three datasets, the fraction of node-pairs whose SimRank
(resp. RWR) score misses in-link path contributions, split into
"completely dissimilar" and "partially missing" (Section 3.1's two
failure modes). The paper reports 99.92% / 69.91% / 97.13% of pairs
affected for SimRank on CitHepTh / DBLP / Web-Google, i.e. the issue
is the norm, not a corner case — the motivation for SimRank*.
"""

from __future__ import annotations

from repro.analysis import zero_similarity_census
from repro.bench.harness import ExperimentResult
from repro.datasets import load_dataset

DATASETS = ("cit-hepth", "dblp", "web-google")

# The paper's reported totals (% of pairs with the issue).
PAPER_SR = {"cit-hepth": 99.92, "dblp": 69.91, "web-google": 97.13}
PAPER_RWR = {"cit-hepth": 99.84, "dblp": 69.91, "web-google": 96.42}


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate the Figure 6(d) census on the three stand-ins."""
    result = ExperimentResult(
        name='Figure 6(d): % of "zero-similarity" node-pairs'
    )
    censuses = {}
    rows = []
    for name in DATASETS:
        census = zero_similarity_census(load_dataset(name).graph)
        censuses[name] = census
        pct = census.as_percentages()
        rows.append(
            {
                "Dataset": name,
                "zero-SR %": round(pct["zero-SR issue %"], 2),
                "SR complete %": round(
                    pct["SR completely dissimilar %"], 2
                ),
                "SR partial %": round(pct["SR partially missing %"], 2),
                "zero-RWR %": round(pct["zero-RWR issue %"], 2),
                "RWR complete %": round(
                    pct["RWR completely dissimilar %"], 2
                ),
                "RWR partial %": round(pct["RWR partially missing %"], 2),
                "paper zero-SR %": PAPER_SR[name],
                "paper zero-RWR %": PAPER_RWR[name],
            }
        )
    result.tables["Zero-similarity census (ordered pairs, i != j)"] = rows

    cit = censuses["cit-hepth"]
    for name in DATASETS:
        result.add_check(
            f"{name}: zero-SR issues affect the majority of pairs "
            "('commonly exist in real graphs')",
            censuses[name].simrank_issue >= 0.5,
        )
    result.add_check(
        "cit-hepth: both failure modes are substantial (the paper's "
        "~40% / ~55% split)",
        cit.simrank_completely_dissimilar >= 0.2
        and cit.simrank_partially_missing >= 0.2,
    )
    result.add_check(
        "dblp: SR and RWR issue rates coincide exactly (undirected "
        "graph, as in the paper's 69.91 / 69.91)",
        abs(
            censuses["dblp"].simrank_issue - censuses["dblp"].rwr_issue
        )
        < 1e-9,
    )
    for name in DATASETS:
        result.add_check(
            f"{name}: SR and RWR issue rates within 8 points of each "
            "other (as in the paper)",
            abs(censuses[name].simrank_issue - censuses[name].rwr_issue)
            < 0.08,
        )
        result.add_check(
            f"{name}: SR misses at least as many pairs as RWR",
            censuses[name].simrank_issue
            >= censuses[name].rwr_issue - 1e-9,
        )
    result.notes.append(
        "Classification is exact (unbounded path length) via the "
        "product-graph reachability primitives of repro.core.paths."
    )
    result.notes.append(
        "Deviation: absolute rates sit below the paper's 95-99% on "
        "the directed stand-ins because the scaled graphs have a "
        "proportionally larger uncited fringe (recent papers nobody "
        "cites yet); corpus-scale graphs are near-universally "
        "co-cited. The split into both failure modes and the "
        "SR-vs-RWR relationships match."
    )
    return result
