"""Figure 6(h): memory footprint of the five implementations.

Measures each algorithm's peak allocation (tracemalloc, which numpy
reports into) on the same workloads as Figure 6(e). The paper's
claims:

* memo-eSR* and memo-gSR* stay within the same order of magnitude as
  iter-gSR* and psum-SR — fine-grained memoization costs only a
  modest overhead (the paper: 19-29% extra);
* mtx-SR needs far more memory (its SVD factors are dense), at least
  an order of magnitude on the DBLP snapshots;
* memo memory is stable as K grows (partials are freed per
  iteration).
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.bench.memory import measure_peak_memory
from repro.core import iterations_for_accuracy
from repro.datasets import load_dataset
from repro.measures import TIMED_ALGORITHMS

C = 0.6
EPSILON = 1e-3
MB = 1024 * 1024


def _peaks_for(graph, labels, k_of) -> dict[str, float]:
    peaks = {}
    for label in labels:
        fn = TIMED_ALGORITHMS[label]
        _, peak = measure_peak_memory(fn, graph, C, k_of(label))
        peaks[label] = peak / MB
    return peaks


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate the Figure 6(h) memory comparison."""
    k_geo = iterations_for_accuracy(C, EPSILON, "geometric")
    k_exp = iterations_for_accuracy(C, EPSILON, "exponential")
    k_of = lambda label: k_exp if "eSR" in label else k_geo
    result = ExperimentResult(name="Figure 6(h): memory space")

    # Panel 1: DBLP snapshots, all five algorithms (incl. mtx-SR).
    dblp_peaks: dict[str, dict[str, float]] = {}
    rows = []
    for name in ("d05", "d08", "d11"):
        graph = load_dataset(name).graph
        dblp_peaks[name] = _peaks_for(
            graph, list(TIMED_ALGORITHMS), k_of
        )
        rows.append(
            {
                "Dataset": name,
                **{
                    f"{label} (MB)": round(peak, 2)
                    for label, peak in dblp_peaks[name].items()
                },
            }
        )
    result.tables["DBLP snapshots: peak memory"] = rows

    # Panel 2: memory vs K on the larger graphs (no mtx-SR, as in the
    # paper's panels).
    k_rows = []
    k_values = (5, 10) if fast else (5, 10, 15, 20)
    web = load_dataset("web-google").graph
    memo_by_k = {}
    for k in k_values:
        peaks = _peaks_for(
            web,
            ["memo-eSR*", "memo-gSR*", "iter-gSR*", "psum-SR"],
            lambda label: k,
        )
        memo_by_k[k] = peaks["memo-gSR*"]
        k_rows.append(
            {
                "K": k,
                **{
                    f"{label} (MB)": round(peak, 1)
                    for label, peak in peaks.items()
                },
            }
        )
    result.tables["web-google: peak memory vs K"] = k_rows

    for name in ("d05", "d08", "d11"):
        peaks = dblp_peaks[name]
        others = [
            peaks[l]
            for l in ("memo-eSR*", "memo-gSR*", "iter-gSR*", "psum-SR")
        ]
        result.add_check(
            f"{name}: mtx-SR needs the most memory (dense SVD factors)",
            peaks["mtx-SR"] > max(others),
        )
        result.add_check(
            f"{name}: memo variants within 3x of iter-gSR* "
            "(same order of magnitude)",
            max(peaks["memo-eSR*"], peaks["memo-gSR*"])
            <= 3.0 * peaks["iter-gSR*"],
        )
    first_k, last_k = min(memo_by_k), max(memo_by_k)
    result.add_check(
        "memo-gSR* memory stable as K grows (partials freed per "
        "iteration)",
        abs(memo_by_k[last_k] - memo_by_k[first_k])
        <= 0.15 * memo_by_k[first_k],
    )
    result.notes.append(
        "Peaks measured with tracemalloc relative to call entry; the "
        "input graph and cached datasets are excluded."
    )
    return result
