"""Figure 6(b): role difference of top-ranked node-pairs.

If a similarity measure is meaningful, its most-similar node-pairs
should play similar roles: close citation counts on the citation
graph, close H-indices on the co-authorship graph. The paper sweeps
the "top x% most similar pairs" cutoff and plots the average
attribute difference against the random-pair baseline (RAN).

Claims checked (scaled-data versions of the paper's):

* SimRank* top pairs are far below RAN at tight cutoffs, and
  gSR* stays below RAN out to the 2% cutoff on the citation graph;
* RWR's top pairs have *above-random* differences on the citation
  graph (the paper's Figure 6(b) shows RWR at 43 vs RAN 38) — it
  retrieves (paper, famous-reference) pairs;
* on DBLP, SimRank's difference climbs monotonically towards RAN as
  the cutoff loosens ("SimRank converges to random scoring"), while
  SimRank* stays within a narrow band of RAN that RWR breaks out of.
"""

from __future__ import annotations

from repro.analysis import top_pair_attribute_difference
from repro.bench.harness import ExperimentResult
from repro.datasets import load_dataset
from repro.measures import SEMANTIC_MEASURES

C = 0.6
ITERATIONS = 10

FRACTIONS = {
    # the paper's x-axes: 0.02..20 % on CitHepTh, 0.1..10 % on DBLP
    "cit-hepth": (0.0002, 0.002, 0.02, 0.2),
    "dblp": (0.001, 0.005, 0.01, 0.05, 0.1),
}


def _tables(result: ExperimentResult) -> dict[str, dict[str, dict]]:
    all_diffs: dict[str, dict[str, dict]] = {}
    for dataset_name, fractions in FRACTIONS.items():
        ds = load_dataset(dataset_name)
        diffs: dict[str, dict] = {}
        for label, fn in SEMANTIC_MEASURES.items():
            scores = fn(ds.graph, C, ITERATIONS)
            diffs[label] = top_pair_attribute_difference(
                scores, ds.node_attribute, fractions=fractions
            )
        all_diffs[dataset_name] = diffs
        random_gap = next(iter(diffs.values()))["random"]
        rows = [
            {
                "Measure": label,
                **{f"top {100 * f:g}%": round(g[f], 2) for f in fractions},
            }
            for label, g in diffs.items()
        ]
        rows.append(
            {
                "Measure": "RAN",
                **{
                    f"top {100 * f:g}%": round(random_gap, 2)
                    for f in fractions
                },
            }
        )
        result.tables[
            f"{dataset_name}: avg |{ds.attribute_name}| difference"
        ] = rows
    return all_diffs


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Figure 6(b) on both role-labelled datasets."""
    result = ExperimentResult(
        name="Figure 6(b): role difference of top-ranked pairs"
    )
    diffs = _tables(result)

    # --- citation graph ------------------------------------------------
    cit = diffs["cit-hepth"]
    ran_cit = cit["gSR*"]["random"]
    for ours in ("gSR*", "eSR*"):
        for frac in (0.0002, 0.002):
            result.add_check(
                f"cit-hepth: {ours} top-{100 * frac:g}% below random",
                cit[ours][frac] < ran_cit,
            )
    result.add_check(
        "cit-hepth: gSR* still below random at the 2% cutoff",
        cit["gSR*"][0.02] < ran_cit,
    )
    result.add_check(
        "cit-hepth: RWR top pairs above random (as in the paper)",
        cit["RWR"][0.002] > ran_cit,
    )

    # --- co-authorship graph -------------------------------------------
    dblp = diffs["dblp"]
    ran_dblp = dblp["SR"]["random"]
    fractions = FRACTIONS["dblp"]
    sr_values = [dblp["SR"][f] for f in fractions]
    result.add_check(
        "dblp: SR difference climbs monotonically towards random",
        sr_values == sorted(sr_values) and sr_values[-1] < ran_dblp * 1.02,
    )
    result.add_check(
        "dblp: gSR* stays within 25% of random at every cutoff",
        all(abs(dblp["gSR*"][f] - ran_dblp) <= 0.25 * ran_dblp
            for f in fractions),
    )
    result.add_check(
        "dblp: RWR breaks out of that band at some cutoff",
        any(abs(dblp["RWR"][f] - ran_dblp) > 0.25 * ran_dblp
            for f in fractions),
    )
    result.notes.append(
        "Lower = more role-consistent retrieval. RAN is the all-pairs "
        "mean attribute difference (the paper's random baseline)."
    )
    result.notes.append(
        "Deviation: at the loosest cutoffs our top-similar sets "
        "over-represent hub nodes (the scaled generator's citation "
        "tail is much shorter than arXiv's), so absolute gaps exceed "
        "RAN earlier than in the paper; the tight-cutoff ordering and "
        "the RWR pathology match."
    )
    return result
