"""Figure 5: the dataset roster.

Prints the stand-in datasets next to the original corpus sizes and
checks the densities track the paper's (the structural knob the
efficiency experiments sweep).
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.datasets import figure5_rows, load_dataset


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate the Figure 5 dataset table."""
    result = ExperimentResult(name="Figure 5: datasets")
    rows = figure5_rows()
    result.tables["Datasets (stand-ins vs paper)"] = rows

    for row in rows:
        target = row["paper density"]
        measured = row["Density"]
        result.add_check(
            f"{row['Dataset']}: density {measured} within 45% of "
            f"paper's {target}",
            abs(measured - target) <= 0.45 * target,
        )
    sizes = [load_dataset(n).graph.num_nodes for n in ("d05", "d08", "d11")]
    result.add_check("D05 < D08 < D11 node growth", sizes == sorted(sizes))
    result.add_check(
        "cit-hepth is the densest bibliographic graph (as in Figure 5)",
        rows[0]["Density"] == max(r["Density"] for r in rows),
    )
    result.notes.append(
        "Node counts are scaled to laptop size; densities (|E|/|V|) "
        "match the paper's Figure 5, which is the property the "
        "efficiency experiments depend on."
    )
    return result
