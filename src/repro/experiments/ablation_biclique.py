"""Ablation: biclique-mining knobs (Section 4.3's heuristic).

Edge concentration is NP-hard, so the miner is a greedy heuristic
with two practical knobs: the seeding cap (bottom nodes with larger
in-sets are skipped during quadratic pair counting) and an optional
cap on the number of bicliques. This ablation sweeps both on the
web-graph stand-in and reports compression ratio and mining time —
quantifying the compression/preprocessing-cost trade-off that the
paper's Figure 6(f) treats as fixed.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, timed
from repro.bigraph import induced_bigraph, mine_bicliques
from repro.datasets import load_dataset

SEEDING_CAPS = (4, 8, 16, 64)
BICLIQUE_CAPS = (10, 50, None)


def run(fast: bool = False) -> ExperimentResult:
    """Sweep the miner's knobs on the web-google stand-in."""
    graph = load_dataset("web-google").graph
    bigraph = induced_bigraph(graph)
    m = graph.num_edges
    result = ExperimentResult(
        name="Ablation: biclique mining knobs (Section 4.3)"
    )

    cap_rows = []
    ratios_by_cap = []
    for cap in SEEDING_CAPS:
        found, seconds = timed(
            mine_bicliques, bigraph, max_set_size_for_seeding=cap
        )
        saving = sum(b.saving for b in found)
        ratios_by_cap.append(saving / m)
        cap_rows.append(
            {
                "seeding cap": cap,
                "bicliques": len(found),
                "edges saved": saving,
                "compression %": round(100 * saving / m, 2),
                "mining time (s)": round(seconds, 3),
            }
        )
    result.tables["Seeding cap sweep (web-google)"] = cap_rows

    count_rows = []
    ratios_by_count = []
    for cap in BICLIQUE_CAPS:
        found, seconds = timed(
            mine_bicliques, bigraph, max_bicliques=cap
        )
        saving = sum(b.saving for b in found)
        ratios_by_count.append(saving / m)
        count_rows.append(
            {
                "max bicliques": "all" if cap is None else cap,
                "bicliques": len(found),
                "compression %": round(100 * saving / m, 2),
                "mining time (s)": round(seconds, 3),
            }
        )
    result.tables["Biclique count sweep (web-google)"] = count_rows

    result.add_check(
        "larger seeding caps never reduce compression",
        all(
            a <= b + 1e-12
            for a, b in zip(ratios_by_cap, ratios_by_cap[1:])
        ),
    )
    result.add_check(
        "compression grows with the biclique budget",
        ratios_by_count[0] <= ratios_by_count[-1],
    )
    result.add_check(
        "unbounded mining reaches at least 10% compression on the "
        "web graph",
        ratios_by_count[-1] >= 0.10,
    )
    result.add_check(
        "a small biclique budget already captures most of the saving "
        "(50 bicliques >= 40% of unbounded)",
        ratios_by_count[1] >= 0.4 * ratios_by_count[-1],
    )
    return result
