"""Shared argument validation for every public entry point.

Historically each algorithm module carried its own ``_check_damping``
copy — and a few entry points carried none, silently accepting a
damping factor outside ``(0, 1)``. These helpers are the single source
of truth; :mod:`repro.core`, :mod:`repro.baselines` and
:mod:`repro.engine` all validate through them, so every caller sees
the same errors with the same messages.
"""

from __future__ import annotations

import numbers

__all__ = [
    "validate_damping",
    "validate_epsilon",
    "validate_iterations",
]


def validate_damping(c: float) -> float:
    """Require the damping factor ``C`` to lie strictly in ``(0, 1)``."""
    if not 0.0 < c < 1.0:
        raise ValueError(f"damping factor C must lie in (0, 1), got {c}")
    return c


def validate_iterations(k: int, name: str = "num_iterations") -> int:
    """Require an iteration / term count to be a non-negative integer.

    ``name`` customises the message (``num_iterations``, ``num_terms``,
    ...), matching what the caller's signature calls the argument.
    """
    if k is not None and not isinstance(k, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {k!r}")
    if k is None or k < 0:
        raise ValueError(f"{name} must be >= 0")
    return int(k)


def validate_epsilon(epsilon: float) -> float:
    """Require a truncation-accuracy target to lie strictly in ``(0, 1)``."""
    if epsilon <= 0 or epsilon >= 1:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    return epsilon
