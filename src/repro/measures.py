"""Uniform registry of all similarity measures under comparison.

Maps the paper's algorithm labels to callables with a single
signature, so the experiment harness and benchmarks can sweep them::

    compute_measure("gSR*", graph, c=0.6)   # -> (n, n) score matrix

Labels follow Figure 6: ``eSR*``, ``gSR*`` (our algorithms), ``SR``,
``PR``, ``RWR`` (baselines), plus the implementation variants used by
the efficiency experiments (``memo-gSR*``, ``memo-eSR*``,
``iter-gSR*``, ``psum-SR``, ``mtx-SR``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.baselines import (
    mtx_simrank,
    prank_matrix,
    psum_simrank_fast,
    rwr,
    simrank_matrix,
)
from repro.core import (
    iterations_for_accuracy,
    memo_simrank_star_exponential,
    memo_simrank_star_factorized,
    simrank_star,
    simrank_star_exponential,
)
from repro.graph.digraph import DiGraph

__all__ = [
    "MEASURES",
    "MTX_BENCH_RANK",
    "SEMANTIC_MEASURES",
    "TIMED_ALGORITHMS",
    "compute_measure",
]


def _esr(graph: DiGraph, c: float, num_iterations: int) -> np.ndarray:
    # match geometric accuracy: the exponential variant converges
    # factorially, so its K for the same epsilon is smaller.
    epsilon = max(c ** (num_iterations + 1), 1e-12)
    k = iterations_for_accuracy(c, epsilon, "exponential")
    return simrank_star_exponential(graph, c, num_iterations=max(k, 2))


# Semantic measures, keyed by the labels of Figure 6(a)-(c).
SEMANTIC_MEASURES: dict[str, Callable] = {
    "eSR*": _esr,
    "gSR*": lambda g, c, k: simrank_star(g, c, k),
    "SR": lambda g, c, k: simrank_matrix(g, c, k),
    "PR": lambda g, c, k: prank_matrix(g, c, 0.5, k),
    "RWR": lambda g, c, k: rwr(g, c, k),
}

# Implementation variants timed by Figure 6(e)-(h). All evaluate at
# the same abstraction level (sparse-dense products), so wall-clock
# ratios reflect per-iteration operator cost: psum-SR two m-nnz
# products, iter-gSR* one, memo-gSR* one of m~ nnz, memo-eSR* fewer
# iterations. mtx-SR's rank is capped at 48 — large enough that its
# r^2 x r^2 inner solve dominates both time and memory (the scaling
# failure the paper reports), small enough to terminate; full rank is
# infeasible.
MTX_BENCH_RANK = 48

TIMED_ALGORITHMS: dict[str, Callable] = {
    "memo-eSR*": lambda g, c, k: memo_simrank_star_exponential(g, c, k),
    "memo-gSR*": lambda g, c, k: memo_simrank_star_factorized(g, c, k),
    "iter-gSR*": lambda g, c, k: simrank_star(g, c, k),
    "psum-SR": lambda g, c, k: psum_simrank_fast(g, c, k),
    "mtx-SR": lambda g, c, k: mtx_simrank(g, c, rank=MTX_BENCH_RANK),
}

MEASURES: dict[str, Callable] = {**SEMANTIC_MEASURES, **TIMED_ALGORITHMS}


def compute_measure(
    name: str, graph: DiGraph, c: float = 0.6, num_iterations: int = 5
) -> np.ndarray:
    """Run the measure registered under ``name``.

    ``num_iterations`` is interpreted per measure (the exponential
    variants translate it into an equivalent accuracy target).
    """
    try:
        fn = MEASURES[name]
    except KeyError:
        raise KeyError(
            f"unknown measure {name!r}; choose from {sorted(MEASURES)}"
        ) from None
    return fn(graph, c, num_iterations)
