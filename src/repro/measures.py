"""Built-in similarity measures, registered with the pluggable registry.

Every measure under comparison is registered once via
:func:`repro.engine.register_measure` with its metadata — display
label, family, whether it appears in the semantic (Figure 6(a)-(c)) or
efficiency (Figure 6(e)-(h)) comparisons, and serving capabilities
used by :class:`repro.engine.SimilarityEngine` (single-source support,
which cached artifacts its callable accepts).

The historical dict views are kept as thin projections of the
registry, so the experiment harness and benchmarks can keep sweeping
them::

    compute_measure("gSR*", graph, c=0.6)   # -> (n, n) score matrix

Labels follow Figure 6: ``eSR*``, ``gSR*`` (our algorithms), ``SR``,
``PR``, ``RWR`` (baselines), plus the implementation variants used by
the efficiency experiments (``memo-gSR*``, ``memo-eSR*``,
``iter-gSR*``, ``psum-SR``, ``mtx-SR``).
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.baselines import (
    mtx_simrank,
    prank_matrix,
    psum_simrank_fast,
    rwr,
    simrank_matrix,
)
from repro.core import (
    iterations_for_accuracy,
    memo_simrank_star_exponential,
    memo_simrank_star_factorized,
    simrank_star,
    simrank_star_exponential,
)
from repro.engine.registry import MeasureView, get_measure, register_measure
from repro.graph.digraph import DiGraph

__all__ = [
    "MEASURES",
    "MTX_BENCH_RANK",
    "SEMANTIC_MEASURES",
    "TIMED_ALGORITHMS",
    "compute_measure",
]


@register_measure(
    "eSR*",
    label="SimRank* (exponential)",
    family="SimRank*",
    semantic=True,
    weight_scheme="exponential",
    uses=("transition", "dtype"),
    description="Exponential SimRank* at accuracy matched to the "
    "geometric K-term truncation",
)
def _esr(graph: DiGraph, c: float, num_iterations: int, **artifacts):
    # match geometric accuracy: the exponential variant converges
    # factorially, so its K for the same epsilon is smaller.
    epsilon = max(c ** (num_iterations + 1), 1e-12)
    k = iterations_for_accuracy(c, epsilon, "exponential")
    return simrank_star_exponential(
        graph, c, num_iterations=max(k, 2), **artifacts
    )


@register_measure(
    "gSR*",
    label="SimRank* (geometric)",
    family="SimRank*",
    semantic=True,
    supports_single_source=True,
    weight_scheme="geometric",
    uses=("transition", "dtype"),
    description="Geometric SimRank* via the Eq. (14) fixed-point "
    "iteration",
)
def _gsr(graph: DiGraph, c: float, num_iterations: int, **artifacts):
    return simrank_star(graph, c, num_iterations, **artifacts)


@register_measure(
    "SR",
    label="SimRank",
    family="SimRank",
    semantic=True,
    uses=("transition",),
    description="SimRank matrix form Eq. (3) (Jeh & Widom)",
)
def _sr(graph: DiGraph, c: float, num_iterations: int, **artifacts):
    return simrank_matrix(graph, c, num_iterations, **artifacts)


@register_measure(
    "PR",
    label="P-Rank",
    family="P-Rank",
    semantic=True,
    description="P-Rank with balanced in/out weight (lambda = 0.5)",
)
def _pr(graph: DiGraph, c: float, num_iterations: int):
    return prank_matrix(graph, c, 0.5, num_iterations)


@register_measure(
    "RWR",
    label="Random Walk with Restart",
    family="RWR",
    semantic=True,
    symmetric=False,
    description="Truncated RWR series Eq. (6) (asymmetric)",
)
def _rwr(graph: DiGraph, c: float, num_iterations: int):
    return rwr(graph, c, num_iterations)


# Implementation variants timed by Figure 6(e)-(h). All evaluate at
# the same abstraction level (sparse-dense products), so wall-clock
# ratios reflect per-iteration operator cost: psum-SR two m-nnz
# products, iter-gSR* one, memo-gSR* one of m~ nnz, memo-eSR* fewer
# iterations. mtx-SR's rank is capped at 48 — large enough that its
# r^2 x r^2 inner solve dominates both time and memory (the scaling
# failure the paper reports), small enough to terminate; full rank is
# infeasible.
MTX_BENCH_RANK = 48


@register_measure(
    "memo-eSR*",
    label="memo-eSR* (Algorithm 1, exponential)",
    family="SimRank*",
    timed=True,
    weight_scheme="exponential",
    variant="exponential",
    default_iterations=10,
    uses=("compressed", "dtype"),
    description="Exponential SimRank* over the biclique-compressed "
    "graph",
)
def _memo_esr(
    graph: DiGraph, c: float, num_iterations: int, **artifacts
):
    return memo_simrank_star_exponential(
        graph, c, num_iterations, **artifacts
    )


@register_measure(
    "memo-gSR*",
    label="memo-gSR* (Algorithm 1, geometric)",
    family="SimRank*",
    timed=True,
    supports_single_source=True,
    weight_scheme="geometric",
    uses=("compressed", "dtype"),
    description="Geometric SimRank* over the biclique-compressed "
    "graph",
)
def _memo_gsr(
    graph: DiGraph, c: float, num_iterations: int, **artifacts
):
    return memo_simrank_star_factorized(
        graph, c, num_iterations, **artifacts
    )


@register_measure(
    "iter-gSR*",
    label="iter-gSR* (plain iteration)",
    family="SimRank*",
    timed=True,
    supports_single_source=True,
    weight_scheme="geometric",
    uses=("transition", "dtype"),
    description="Geometric SimRank* without compression (one "
    "sparse-dense product per iteration)",
)
def _iter_gsr(
    graph: DiGraph, c: float, num_iterations: int, **artifacts
):
    return simrank_star(graph, c, num_iterations, **artifacts)


@register_measure(
    "psum-SR",
    label="psum-SR (partial sums)",
    family="SimRank",
    timed=True,
    description="SimRank with whole-set partial-sums sharing",
)
def _psum_sr(graph: DiGraph, c: float, num_iterations: int):
    return psum_simrank_fast(graph, c, num_iterations)


@register_measure(
    "mtx-SR",
    label="mtx-SR (low-rank SVD)",
    family="SimRank",
    timed=True,
    description=f"SVD SimRank at rank {MTX_BENCH_RANK} (iteration "
    "count is ignored)",
)
def _mtx_sr(graph: DiGraph, c: float, num_iterations: int):
    return mtx_simrank(graph, c, rank=MTX_BENCH_RANK)


# ---------------------------------------------------------------------------
# Historical dict-style views over the registry. These are *live*
# mappings: a measure registered at runtime through
# ``repro.engine.register_measure`` shows up here (and in the
# experiment sweeps that iterate them) immediately.
# ---------------------------------------------------------------------------

# Semantic measures, keyed by the labels of Figure 6(a)-(c).
SEMANTIC_MEASURES: Mapping[str, Callable] = MeasureView(semantic=True)

TIMED_ALGORITHMS: Mapping[str, Callable] = MeasureView(timed=True)

MEASURES: Mapping[str, Callable] = MeasureView()


def compute_measure(
    name: str, graph: DiGraph, c: float = 0.6, num_iterations: int = 5
) -> np.ndarray:
    """Run the measure registered under ``name``.

    ``num_iterations`` is interpreted per measure (the exponential
    variants translate it into an equivalent accuracy target).

    Examples
    --------
    >>> from repro import DiGraph, compute_measure
    >>> g = DiGraph(3, edges=[(0, 1), (0, 2)])
    >>> s = compute_measure("gSR*", g, c=0.6, num_iterations=5)
    >>> s.shape
    (3, 3)
    >>> bool(s[1, 2] > 0)
    True
    """
    return get_measure(name).compute(graph, c, num_iterations)
