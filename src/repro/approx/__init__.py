"""Monte-Carlo walk-index tier — similarity beyond the exact kernels.

Every exact kernel in :mod:`repro.core` pays ``O(n)`` memory and time
per query column, which caps the engine/serve/cluster stack at roughly
``10^5`` nodes. This package trades a bounded estimation error for
per-query cost that scales with the *sample budget* instead:

* :class:`WalkIndex` — precomputed reverse random walks (``samples``
  per node, endpoints recorded at each step), persistable as optional
  segments of the ``.simidx`` container so cluster workers share one
  memory-mapped copy;
* :class:`ApproxEstimator` — combines walk-endpoint meeting counts
  with the engine's series-coefficient table into single-source
  columns and early-terminating top-k rankings;
* the ``epsilon -> samples`` policy (:func:`samples_for_epsilon`,
  :func:`approx_params`) shared by the engine, the index builder and
  the CLIs.

Selected via ``SimilarityConfig(mode="approx", epsilon=..., seed=...)``
— see :mod:`repro.engine` — rather than called directly.

Examples
--------
>>> from repro.approx import samples_for_epsilon, approx_params
>>> samples_for_epsilon(0.05)
64
>>> approx_params(truncation=10, epsilon=None)
(5, 64)
"""

from __future__ import annotations

import math

from repro.approx.estimator import ApproxEstimator, ApproxStats
from repro.approx.walks import DEAD, WalkIndex

__all__ = [
    "ApproxEstimator",
    "ApproxStats",
    "DEAD",
    "DEFAULT_EPSILON",
    "DEFAULT_WALK_LENGTH",
    "WalkIndex",
    "approx_params",
    "samples_for_epsilon",
]

#: Default accuracy knob of ``mode="approx"`` when the configuration
#: names none — 64 walks per node per level, the budget the tuning
#: guide's precision@10 >= 0.9 numbers are measured at.
DEFAULT_EPSILON = 0.05

#: Default source-side walk depth. With the paper's ``c = 0.6`` and
#: geometric weights, series mass at levels ``alpha >= 6`` is under
#: half a percent of the total — not worth storing walks for.
DEFAULT_WALK_LENGTH = 5

_MIN_SAMPLES = 16
_MAX_SAMPLES = 512


def samples_for_epsilon(epsilon: float) -> int:
    """Walk samples per node per level for an accuracy target.

    The estimator's per-entry standard error shrinks as
    ``1 / sqrt(samples)``, so the budget scales as ``1 / epsilon``
    (clamped to ``[16, 512]`` — below 16 the empirical endpoint
    distribution is too coarse to rank with, above 512 the index
    stops fitting the "10x smaller than exact" promise).

    Examples
    --------
    >>> samples_for_epsilon(0.05)
    64
    >>> samples_for_epsilon(0.5)
    16
    >>> samples_for_epsilon(0.001)
    512
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError(
            f"epsilon must lie in (0, 1), got {epsilon!r}"
        )
    return max(
        _MIN_SAMPLES, min(_MAX_SAMPLES, math.ceil(3.2 / epsilon))
    )


def approx_params(
    truncation: int, epsilon: float | None
) -> tuple[int, int]:
    """The ``(walk_length, samples)`` a configuration implies.

    The one place the engine, the index builder and the benchmarks
    all resolve their walk geometry, so an index built by any of them
    fingerprint-matches the others.

    Examples
    --------
    >>> approx_params(truncation=10, epsilon=0.05)
    (5, 64)
    >>> approx_params(truncation=2, epsilon=None)   # shallow series
    (2, 64)
    """
    walk_length = min(DEFAULT_WALK_LENGTH, int(truncation))
    samples = samples_for_epsilon(
        DEFAULT_EPSILON if epsilon is None else epsilon
    )
    return walk_length, samples
