"""Reverse-random-walk sample store — the approx tier's precomputation.

The Monte-Carlo estimator (:mod:`repro.approx.estimator`) rewrites the
truncated SimRank* series as an expectation over *reverse* random
walks: ``Q^alpha[u, w]`` — the weight the exact kernel computes by
``alpha`` sparse products — is exactly the probability that a length-
``alpha`` walk from ``u`` along the backward transition matrix ``Q``
ends at ``w``. A :class:`WalkIndex` materialises that distribution
empirically: ``samples`` independent walks from every node, with the
endpoint after each step ``1 .. walk_length`` recorded in aligned
``uint32`` arrays.

Two layouts of the same data are stored, because the estimator needs
both directions:

* ``endpoints[l - 1, i, r]`` — where walk ``r`` from node ``i`` stands
  after ``l`` steps (:data:`DEAD` once the walk hits an in-degree-0
  node, mirroring the absorbing zero rows of ``Q``);
* an **inverted index** per level — ``bucket(l, w)`` lists every walk
  source whose step-``l`` endpoint is ``w``, stored *run-length
  deduplicated*: each (source, endpoint) pair appears once in
  ``sources`` with its multiplicity in the aligned ``counts`` array.
  Walks concentrate heavily on hub endpoints (several walks from one
  source often meet at the same node), so deduplication both shrinks
  the index and cuts the estimator's dominant gather volume.

Both are plain contiguous arrays, which is what lets
:mod:`repro.index.store` persist them as optional ``.simidx`` segments
and :mod:`repro.cluster` workers share one memory-mapped copy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

__all__ = ["DEAD", "WalkIndex"]

#: Endpoint sentinel for an absorbed walk (a walk that reached a node
#: with no in-neighbours — ``Q``'s zero rows). ``uint32``'s maximum,
#: so it can never collide with a real node id (the store rejects
#: graphs that large long before this matters).
DEAD = 0xFFFF_FFFF


def _validate_build_args(walk_length: int, samples: int) -> None:
    if not isinstance(walk_length, int) or isinstance(walk_length, bool):
        raise TypeError(f"walk_length must be an int, got {walk_length!r}")
    if walk_length < 0:
        raise ValueError(f"walk_length must be >= 0, got {walk_length}")
    if (
        not isinstance(samples, int)
        or isinstance(samples, bool)
        or samples < 1
    ):
        raise ValueError(f"samples must be a positive int, got {samples!r}")
    if samples > 0xFFFF:
        raise ValueError(
            f"samples must fit the uint16 bucket counts, got {samples}"
        )


@dataclass(frozen=True, eq=False)
class WalkIndex:
    """``samples`` reverse walks per node, endpoint-indexed per level.

    Attributes
    ----------
    endpoints:
        ``uint32`` array of shape ``(walk_length, num_nodes, samples)``;
        ``endpoints[l - 1, i, r]`` is walk ``r`` of node ``i`` after
        ``l`` steps, or :data:`DEAD` if the walk was absorbed.
    sources:
        ``uint32`` concatenation of every level's inverted buckets,
        one entry per distinct (source, endpoint) pair.
    counts:
        ``uint16`` array aligned with :attr:`sources`; how many of the
        source's walks end on the bucket's node at that level (at most
        ``samples``, which the build caps at ``uint16`` range).
    indptr:
        ``int64`` array of shape ``(walk_length, num_nodes + 1)``;
        per-level CSR-style bucket boundaries (level-local offsets).
    level_offsets:
        ``int64`` array of shape ``(walk_length + 1,)``; where each
        level's buckets start inside :attr:`sources`.
    seed:
        The RNG seed the walks were drawn with — part of the index
        fingerprint, so equal seeds mean bit-identical estimates.

    Examples
    --------
    Walks die at in-degree-0 nodes, exactly like the exact kernel's
    absorbing transition rows:

    >>> import numpy as np
    >>> from repro.graph.digraph import DiGraph
    >>> from repro.graph.matrices import backward_transition_matrix
    >>> g = DiGraph(3, edges=[(0, 1), (0, 2), (1, 2)])
    >>> q = backward_transition_matrix(g)
    >>> walks = WalkIndex.build(q, walk_length=2, samples=4, seed=0)
    >>> walks.endpoints.shape
    (2, 3, 4)
    >>> bool((walks.endpoints[0, 0] == DEAD).all())  # 0 has no in-edges
    True
    >>> sorted(set(walks.endpoints[0, 2].tolist())) == [0, 1]
    True

    The inverted buckets are the same data keyed by endpoint — every
    source in ``bucket(l, w)`` has ``w`` as its step-``l`` endpoint:

    >>> all(
    ...     walks.endpoints[0, int(src)].tolist().count(1) > 0
    ...     for src in walks.bucket(1, 1)
    ... )
    True

    Buckets are deduplicated; the aligned counts preserve the walk
    multiplicities, so no sampled mass is lost:

    >>> level_one = walks.counts[: int(walks.level_offsets[1])]
    >>> int(level_one.sum()) == int((walks.endpoints[0] != DEAD).sum())
    True
    >>> WalkIndex.build(q, walk_length=2, samples=4, seed=0) == walks
    True
    """

    endpoints: np.ndarray
    sources: np.ndarray
    counts: np.ndarray
    indptr: np.ndarray
    level_offsets: np.ndarray
    seed: int

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        transition: sp.csr_array,
        walk_length: int,
        samples: int,
        seed: int = 0,
    ) -> "WalkIndex":
        """Draw ``samples`` reverse walks per node along ``transition``.

        ``transition`` is the backward transition matrix ``Q`` in CSR
        form (row ``i`` holds the uniform step distribution over
        ``i``'s in-neighbours). Sampling is fully vectorised — one
        gather/draw pass per step over all ``num_nodes * samples``
        walks at once — and deterministic per ``seed``.
        """
        _validate_build_args(walk_length, samples)
        n = int(transition.shape[0])
        if n >= DEAD:
            raise ValueError(
                f"graph has {n} nodes; walk endpoints are uint32 with "
                f"{DEAD:#x} reserved for absorbed walks"
            )
        csr_indptr = np.asarray(transition.indptr, dtype=np.int64)
        csr_indices = np.asarray(transition.indices, dtype=np.int64)
        rng = np.random.default_rng(seed)
        # walk w = i * samples + r starts at node i
        state = np.repeat(np.arange(n, dtype=np.int64), samples)
        dead = np.zeros(n * samples, dtype=bool)
        endpoints = np.empty((walk_length, n * samples), dtype=np.uint32)
        for step in range(walk_length):
            deg = np.where(
                dead, 0, csr_indptr[state + 1] - csr_indptr[state]
            )
            dead |= deg == 0
            draws = rng.random(state.size)
            offset = np.minimum(
                (draws * deg).astype(np.int64), np.maximum(deg - 1, 0)
            )
            choice = np.where(dead, 0, csr_indptr[state] + offset)
            state = np.where(dead, state, csr_indices[choice])
            endpoints[step] = np.where(dead, DEAD, state)
        sources, counts, indptr, level_offsets = cls._invert(
            endpoints, n, samples
        )
        return cls(
            endpoints=endpoints.reshape(walk_length, n, samples),
            sources=sources,
            counts=counts,
            indptr=indptr,
            level_offsets=level_offsets,
            seed=seed,
        )

    @staticmethod
    def _invert(
        endpoints_flat: np.ndarray, num_nodes: int, samples: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-level deduplicated endpoint-to-sources buckets.

        Absorbed walks drop out; repeat (source, endpoint) pairs
        collapse to one entry with a multiplicity count.
        """
        walk_length = endpoints_flat.shape[0]
        walk_source = np.repeat(
            np.arange(num_nodes, dtype=np.int64), samples
        )
        source_parts, count_parts = [], []
        indptr = np.zeros(
            (walk_length, num_nodes + 1), dtype=np.int64
        )
        for step in range(walk_length):
            level = endpoints_flat[step]
            alive = level != DEAD
            keys = level[alive].astype(np.int64) * num_nodes + (
                walk_source[alive]
            )
            pairs, multiplicity = np.unique(keys, return_counts=True)
            source_parts.append(
                (pairs % num_nodes).astype(np.uint32)
            )
            count_parts.append(multiplicity.astype(np.uint16))
            bucket_sizes = np.bincount(
                pairs // num_nodes, minlength=num_nodes
            )
            np.cumsum(bucket_sizes, out=indptr[step, 1:])
        level_offsets = np.zeros(walk_length + 1, dtype=np.int64)
        if source_parts:
            np.cumsum(
                [p.size for p in source_parts], out=level_offsets[1:]
            )
        sources = (
            np.concatenate(source_parts)
            if source_parts
            else np.empty(0, dtype=np.uint32)
        )
        counts = (
            np.concatenate(count_parts)
            if count_parts
            else np.empty(0, dtype=np.uint16)
        )
        return sources, counts, indptr, level_offsets

    @classmethod
    def from_arrays(
        cls,
        endpoints: np.ndarray,
        sources: np.ndarray,
        counts: np.ndarray,
        indptr: np.ndarray,
        level_offsets: np.ndarray,
        seed: int = 0,
    ) -> "WalkIndex":
        """Reassemble a walk index from its (possibly mmap'd) arrays.

        The persistence layer's constructor: shape and dtype
        consistency is checked here (cheap, structural); content
        integrity (checksums, bucket invariants) is the store's
        ``verify_index`` job.
        """
        endpoints = np.asarray(endpoints)
        sources = np.asarray(sources)
        counts = np.asarray(counts)
        indptr = np.asarray(indptr)
        level_offsets = np.asarray(level_offsets)
        if endpoints.ndim != 3 or endpoints.dtype != np.uint32:
            raise ValueError(
                "endpoints must be a uint32 array of shape "
                f"(walk_length, num_nodes, samples), got "
                f"{endpoints.dtype} {endpoints.shape}"
            )
        walk_length, num_nodes, _ = endpoints.shape
        if indptr.shape != (walk_length, num_nodes + 1):
            raise ValueError(
                f"indptr shape {indptr.shape} disagrees with "
                f"endpoints shape {endpoints.shape}"
            )
        if level_offsets.shape != (walk_length + 1,):
            raise ValueError(
                f"level_offsets shape {level_offsets.shape} disagrees "
                f"with walk_length {walk_length}"
            )
        if sources.ndim != 1 or sources.dtype != np.uint32:
            raise ValueError(
                "sources must be a flat uint32 array, got "
                f"{sources.dtype} shape {sources.shape}"
            )
        if counts.shape != sources.shape or counts.dtype != np.uint16:
            raise ValueError(
                "counts must be a uint16 array aligned with sources, "
                f"got {counts.dtype} shape {counts.shape}"
            )
        if walk_length and int(level_offsets[-1]) != sources.size:
            raise ValueError(
                f"sources has {sources.size} entries but level_offsets "
                f"ends at {int(level_offsets[-1])}"
            )
        return cls(
            endpoints=endpoints,
            sources=sources,
            counts=counts,
            indptr=indptr,
            level_offsets=level_offsets,
            seed=int(seed),
        )

    # ------------------------------------------------------------------
    # shape / access
    # ------------------------------------------------------------------
    @property
    def walk_length(self) -> int:
        """Number of recorded step levels (level 0 is analytic)."""
        return int(self.endpoints.shape[0])

    @property
    def num_nodes(self) -> int:
        return int(self.endpoints.shape[1])

    @property
    def samples(self) -> int:
        """Independent walks drawn per node."""
        return int(self.endpoints.shape[2])

    @property
    def nbytes(self) -> int:
        """Total bytes across all stored arrays (mmap'd or not)."""
        return int(
            self.endpoints.nbytes
            + self.sources.nbytes
            + self.counts.nbytes
            + self.indptr.nbytes
            + self.level_offsets.nbytes
        )

    def bucket(self, level: int, node: int) -> np.ndarray:
        """Walk sources whose step-``level`` endpoint is ``node``.

        ``level`` is 1-based (level 0 would be the identity — every
        node trivially "meets itself", which the estimator handles
        analytically). Returns a zero-copy slice of :attr:`sources`
        with one entry per distinct source; the matching slice of
        :attr:`counts` carries the walk multiplicities.
        """
        if not 1 <= level <= self.walk_length:
            raise IndexError(
                f"level must be in [1, {self.walk_length}], got {level}"
            )
        row = self.indptr[level - 1]
        base = int(self.level_offsets[level - 1])
        return self.sources[
            base + int(row[node]): base + int(row[node + 1])
        ]

    def describe(self) -> dict:
        """A JSON-ready shape/size summary (for ``/status`` + CLI)."""
        return {
            "walk_length": self.walk_length,
            "num_nodes": self.num_nodes,
            "samples": self.samples,
            "seed": self.seed,
            "nbytes": self.nbytes,
        }

    def __eq__(self, other) -> bool:
        if not isinstance(other, WalkIndex):
            return NotImplemented
        return (
            self.seed == other.seed
            and self.endpoints.shape == other.endpoints.shape
            and bool(np.array_equal(self.endpoints, other.endpoints))
            and bool(np.array_equal(self.sources, other.sources))
            and bool(np.array_equal(self.counts, other.counts))
            and bool(np.array_equal(self.indptr, other.indptr))
            and bool(
                np.array_equal(self.level_offsets, other.level_offsets)
            )
        )

    def __repr__(self) -> str:
        return (
            f"WalkIndex(walk_length={self.walk_length}, "
            f"num_nodes={self.num_nodes}, samples={self.samples}, "
            f"seed={self.seed})"
        )
