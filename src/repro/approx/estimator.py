"""Monte-Carlo single-source estimation over a :class:`WalkIndex`.

The exact blocked kernel evaluates the truncated series

    ``S[u, q] = sum_{alpha, beta} coef[beta, alpha]
                * sum_w Q^alpha[u, w] * (Q^T)^beta[w, q]``

with ``O(L)`` sparse matrix products per query batch — every answer
touches all ``n`` nodes. :class:`ApproxEstimator` evaluates the same
sum as a *meeting probability* of reverse walks, splitting it
asymmetrically (the SLING-style near/far split):

* **query side, exact** — the vectors ``p_beta = (Q^T)^beta e_q`` are
  tiny for real graphs, so they are propagated *sparsely* (scatter
  through ``Q``'s rows, consolidate, keep the heaviest
  ``support_cap`` entries). No sampling noise on the query's side of
  the meeting.
* **source side, near levels exact** — level ``alpha = 0`` is the
  identity and level ``alpha = 1`` is one row of ``Q`` per source,
  reachable backwards through ``Q^T``'s rows at
  ``O(support * degree)`` cost — both are applied analytically.
  These two levels carry most of the series mass (the coefficients
  decay geometrically in ``alpha + beta``), so the dominant terms are
  noise-free.
* **source side, far levels sampled** — for ``alpha >= 2``,
  ``Q^alpha[u, w]`` is replaced by the empirical endpoint frequency
  of the precomputed walks, read through the walk index's inverted
  buckets: every stored walk that lands on a query-support node ``w``
  at level ``alpha`` pays ``m_alpha(w) / samples`` to its source,
  where ``m_alpha(w) = sum_beta coef[beta, alpha] * p_beta(w)`` is
  the coefficient-merged query-side weight.

Per query the cost is ``O(support * samples)`` gathered walk entries,
independent of ``n``; :meth:`ApproxEstimator.topk_scores` additionally
stops walking levels once the running top-``k`` set is provably
stable (the remaining levels' total weight cannot reorder the
``k``/``k+1`` boundary) — the confidence-bound early termination the
serving tier reports as ``early_terminations``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.approx.walks import WalkIndex

__all__ = ["ApproxEstimator", "ApproxStats"]

#: First walk level scored from samples; levels below it are analytic.
_FIRST_SAMPLED_LEVEL = 2

#: Per-support fraction of l1 mass the sort-free trims may drop — far
#: below the Monte-Carlo noise floor at any supported sample budget.
_TAIL_MASS = 1e-3

#: Query-side pushes stop this many levels past the walk depth: the
#: series coefficients decay geometrically in ``alpha + beta``, so
#: once the source side is truncated at ``walk_length`` the terms with
#: ``beta > walk_length + margin`` are below the truncation error the
#: walk depth already accepts.
_QUERY_DEPTH_MARGIN = 2


def _multi_range(
    starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Flat indices covering ``[starts[i], starts[i] + lengths[i])``.

    The vectorised many-slices gather both the bucket reads and the
    sparse pushes are built on.
    """
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    seg_starts = np.cumsum(lengths) - lengths
    return np.repeat(starts - seg_starts, lengths) + np.arange(
        total, dtype=np.int64
    )


@dataclass
class ApproxStats:
    """Counters for the approx tier (surfaced via ``/status``).

    ``samples_drawn`` counts walk-index entries actually gathered —
    the estimator's unit of work; ``early_terminations`` counts
    top-k queries that stopped before exhausting the walk levels;
    ``support_truncations`` counts query-side vectors clipped to
    ``support_cap`` (a non-zero value means ``epsilon`` is doing real
    work on this graph).

    Examples
    --------
    >>> stats = ApproxStats()
    >>> stats.columns += 1
    >>> stats.snapshot()["columns"]
    1
    """

    columns: int = 0
    topk_queries: int = 0
    samples_drawn: int = 0
    early_terminations: int = 0
    support_truncations: int = 0

    def snapshot(self) -> dict:
        """A plain-dict copy (handy for logging and assertions)."""
        return dict(self.__dict__)


class ApproxEstimator:
    """Estimate single-source score columns from precomputed walks.

    Parameters
    ----------
    walks:
        The :class:`~repro.approx.WalkIndex` to read meeting counts
        from.
    transition / transition_t:
        The backward transition matrix ``Q`` and its transpose (CSR) —
        used only for the exact sparse parts (query-side propagation
        and the analytic level-1 scatter), never densified.
    coefficients:
        The ``(L+1, L+1)`` series table from
        :func:`repro.core.multi_source.series_coefficients` (or the
        one persisted in a :class:`~repro.index.SimilarityIndex`).
    truncation:
        Series truncation ``L`` — how deep the query side propagates.
        The source side is bounded by ``walks.walk_length``, which may
        be smaller (the dropped tail mass is the scheme's documented
        truncation error).
    dtype:
        Accumulator precision (defaults to ``float64``).
    support_cap:
        Query-side support bound per level; heavier-tailed graphs trade
        a little accuracy for bounded per-query cost.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.graph.digraph import DiGraph
    >>> from repro.graph.matrices import backward_transition_matrix
    >>> from repro.core.multi_source import series_coefficients
    >>> from repro.core.weights import GeometricWeights
    >>> from repro.approx.walks import WalkIndex
    >>> g = DiGraph(4, edges=[(0, 2), (1, 2), (0, 3), (1, 3)])
    >>> q = backward_transition_matrix(g)
    >>> qt = q.T.tocsr()
    >>> walks = WalkIndex.build(q, walk_length=2, samples=32, seed=1)
    >>> coef = series_coefficients(4, GeometricWeights(0.6))
    >>> est = ApproxEstimator(walks, q, qt, coef, truncation=4)
    >>> column = est.column(2)
    >>> column.shape
    (4,)
    >>> bool(column[3] > 0)      # 2 and 3 share both in-neighbours
    True
    >>> est.stats.snapshot()["columns"]
    1

    Same walks, same query — same estimate, bit for bit:

    >>> est2 = ApproxEstimator(walks, q, qt, coef, truncation=4)
    >>> bool(np.array_equal(est2.column(2), column))
    True
    """

    def __init__(
        self,
        walks: WalkIndex,
        transition: sp.csr_array,
        transition_t: sp.csr_array,
        coefficients: np.ndarray,
        truncation: int,
        dtype: np.dtype | str = np.float64,
        support_cap: int = 8192,
    ) -> None:
        if transition.shape[0] != walks.num_nodes:
            raise ValueError(
                f"transition is over {transition.shape[0]} nodes but "
                f"the walk index covers {walks.num_nodes}"
            )
        coefficients = np.asarray(coefficients, dtype=np.float64)
        if coefficients.shape != (truncation + 1, truncation + 1):
            raise ValueError(
                f"coefficients table has shape {coefficients.shape}; "
                f"truncation={truncation} needs "
                f"{(truncation + 1, truncation + 1)}"
            )
        if support_cap < 1:
            raise ValueError("support_cap must be >= 1")
        self.walks = walks
        self._n = int(walks.num_nodes)
        self.truncation = int(truncation)
        self._query_depth = min(
            int(truncation), walks.walk_length + _QUERY_DEPTH_MARGIN
        )
        self.support_cap = int(support_cap)
        self.dtype = np.dtype(dtype)
        self.stats = ApproxStats()
        self._coef = coefficients
        self._q_indptr = np.asarray(transition.indptr, dtype=np.int64)
        self._q_indices = np.asarray(
            transition.indices, dtype=np.int64
        )
        self._q_data = np.asarray(transition.data, dtype=np.float64)
        self._qt_indptr = np.asarray(
            transition_t.indptr, dtype=np.int64
        )
        self._qt_indices = np.asarray(
            transition_t.indices, dtype=np.int64
        )
        self._qt_data = np.asarray(
            transition_t.data, dtype=np.float64
        )

    # ------------------------------------------------------------------
    # exact sparse query side
    # ------------------------------------------------------------------
    def _trim(
        self, nodes: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bound a support's size with provably small dropped mass.

        Two-stage cut, both sort-free: entries below
        ``tail_mass * total / support_size`` are dropped first — if
        every dropped entry is under the per-entry budget, the dropped
        *total* is under ``tail_mass * total`` — then a hard
        ``support_cap`` argpartition catches adversarial residues.
        """
        if nodes.size <= self.support_cap:
            threshold = _TAIL_MASS * float(values.sum()) / max(
                nodes.size, 1
            )
            keep = values > threshold
            if not keep.all():
                self.stats.support_truncations += 1
                return nodes[keep], values[keep]
            return nodes, values
        self.stats.support_truncations += 1
        keep = np.argpartition(values, -self.support_cap)[
            -self.support_cap:
        ]
        keep.sort()
        return nodes[keep], values[keep]

    def _push(
        self, nodes: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One exact step ``p -> Q^T p`` on a sparse support.

        Consolidation goes through a dense ``bincount`` accumulator —
        ``O(n + pushed)`` with no sort — and the mass-bounded tail cut
        is applied *on the dense vector*, so the (large, diffuse) raw
        support is never materialised as an index array.
        """
        starts = self._q_indptr[nodes]
        lengths = self._q_indptr[nodes + 1] - starts
        idx = _multi_range(starts, lengths)
        out_nodes = self._q_indices[idx]
        if out_nodes.size == 0:
            return out_nodes, np.empty(0, dtype=np.float64)
        out_vals = self._q_data[idx] * np.repeat(values, lengths)
        if out_nodes.size <= 4096:
            # small supports (deep levels on DAGs) consolidate by a
            # local sort — no O(n) dense passes for an O(100) result
            uniq, inverse = np.unique(out_nodes, return_inverse=True)
            return self._trim(
                uniq, np.bincount(inverse, weights=out_vals)
            )
        dense = np.bincount(
            out_nodes, weights=out_vals, minlength=self._n
        )
        support = int(np.count_nonzero(dense))
        threshold = _TAIL_MASS * float(out_vals.sum()) / max(support, 1)
        uniq = np.nonzero(dense > threshold)[0]
        kept = dense[uniq]
        if uniq.size < support:
            self.stats.support_truncations += 1
        if uniq.size > self.support_cap:
            self.stats.support_truncations += 1
            keep = np.argpartition(kept, -self.support_cap)[
                -self.support_cap:
            ]
            keep.sort()
            return uniq[keep], kept[keep]
        return uniq, kept

    def _query_side(
        self, query: int
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """``p_beta = (Q^T)^beta e_q`` up to the useful query depth."""
        nodes = np.array([query], dtype=np.int64)
        values = np.array([1.0], dtype=np.float64)
        supports = [(nodes, values)]
        for _ in range(self._query_depth):
            nodes, values = self._push(nodes, values)
            supports.append((nodes, values))
            if nodes.size == 0:
                break
        return supports

    def _merged_weights(
        self, supports: list[tuple[np.ndarray, np.ndarray]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """``m_alpha = sum_beta coef[beta, alpha] p_beta``, all levels.

        Returns ``(union, weights)`` where ``union`` is the sorted
        union of the query-side supports and ``weights[:, alpha]`` is
        ``m_alpha`` evaluated on it. All the per-level merges collapse
        into one ``(support x beta) @ coef`` product over the union —
        a single dense scan instead of one consolidation per level.
        """
        max_alpha = min(self.walks.walk_length, self.truncation)
        active = [
            (beta, nodes, values)
            for beta, (nodes, values) in enumerate(supports)
            if nodes.size
        ]
        if not active:
            return (
                np.empty(0, dtype=np.int64),
                np.empty((0, max_alpha + 1), dtype=np.float64),
            )
        occupancy = np.bincount(
            np.concatenate([nodes for _, nodes, _ in active]),
            minlength=self._n,
        )
        union = np.nonzero(occupancy)[0]
        stacked = np.zeros(
            (union.size, len(active)), dtype=np.float64
        )
        for col, (_, nodes, values) in enumerate(active):
            stacked[np.searchsorted(union, nodes), col] = values
        coef = self._coef[
            [beta for beta, _, _ in active], : max_alpha + 1
        ]
        return union, stacked @ coef

    # ------------------------------------------------------------------
    # analytic near levels
    # ------------------------------------------------------------------
    def _gather_level_one(
        self, nodes: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact ``sum_w Q[u, w] m_1(w)`` contributions via ``Q^T`` rows.

        ``Q^T``'s row ``w`` lists exactly the nodes one reverse step
        away from ``w`` with their ``Q`` weights, so the level-1 term
        — the heaviest sampled level would otherwise be — is scored
        with zero variance at ``O(support * degree)`` cost. Returns
        ``(targets, contributions)`` for the caller's shared flush.
        """
        nodes, values = self._trim(nodes, values)
        starts = self._qt_indptr[nodes]
        lengths = self._qt_indptr[nodes + 1] - starts
        idx = _multi_range(starts, lengths)
        return self._qt_indices[idx], self._qt_data[idx] * np.repeat(
            values, lengths
        )

    # ------------------------------------------------------------------
    # sampled far levels
    # ------------------------------------------------------------------
    def _gather_level(
        self, level: int, nodes: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``count * m_level(w) / samples`` per walk landing on ``w``.

        The support is mass-trimmed first: bucket reads are the
        estimator's dominant cost and the trimmed tail is bounded far
        below the sampling noise it rides on. Returns
        ``(sources, contributions)`` for the caller's shared flush.
        """
        nodes, values = self._trim(nodes, values)
        walks = self.walks
        row = walks.indptr[level - 1]
        base = int(walks.level_offsets[level - 1])
        starts = base + row[nodes]
        lengths = row[nodes + 1] - row[nodes]
        idx = _multi_range(
            np.asarray(starts, dtype=np.int64),
            np.asarray(lengths, dtype=np.int64),
        )
        hit_sources = walks.sources[idx]
        weights = np.repeat(
            values / walks.samples, lengths
        ) * walks.counts[idx]
        self.stats.samples_drawn += int(hit_sources.size)
        return hit_sources, weights

    def _flush(
        self,
        acc: np.ndarray,
        pending: list[tuple[np.ndarray, np.ndarray]],
    ) -> None:
        """Accumulate gathered contributions in one dense pass.

        All pending levels share a single ``bincount`` over the
        concatenated gathers — the ``O(n)`` accumulator passes are
        paid once per flush, not once per level.
        """
        targets = [t for t, _ in pending if t.size]
        if not targets:
            pending.clear()
            return
        acc += np.bincount(
            np.concatenate(targets),
            weights=np.concatenate(
                [w for _, w in pending if w.size]
            ),
            minlength=acc.size,
        ).astype(acc.dtype)
        pending.clear()

    # ------------------------------------------------------------------
    # public estimates
    # ------------------------------------------------------------------
    def column(self, query: int) -> np.ndarray:
        """The estimated score column of ``query`` (dense ``(n,)``).

        Entry ``u`` estimates ``S[u, query]`` under the engine's
        truncated series. All walk levels are consumed — no early
        termination — so the result is reusable as a memoized column.
        """
        union, weights = self._merged_weights(
            self._query_side(int(query))
        )
        acc = np.zeros(self._n, dtype=self.dtype)
        if union.size:
            acc[union] += weights[:, 0].astype(self.dtype)
            pending = []
            if weights.shape[1] > 1:
                pending.append(
                    self._gather_level_one(union, weights[:, 1])
                )
            for alpha in range(_FIRST_SAMPLED_LEVEL, weights.shape[1]):
                pending.append(
                    self._gather_level(alpha, union, weights[:, alpha])
                )
            self._flush(acc, pending)
        self.stats.columns += 1
        return acc

    def topk_scores(self, query: int, k: int) -> np.ndarray:
        """A score column good enough to rank ``query``'s top ``k``.

        Identical to :meth:`column` except that the sampled walk
        levels are consumed in ascending order and the sweep stops as
        soon as the gap between the current ``k``-th and ``(k+1)``-th
        best scores exceeds the total weight the remaining levels
        could still move — at that point no remaining evidence can
        change which ``k`` nodes win. Scores outside the stable
        top-``k`` set may be partial.
        """
        union, weights = self._merged_weights(
            self._query_side(int(query))
        )
        acc = np.zeros(self._n, dtype=self.dtype)
        self.stats.topk_queries += 1
        if not union.size:
            return acc
        level_caps = weights.max(axis=0)
        level_entries = np.diff(self.walks.level_offsets)
        acc[union] += weights[:, 0].astype(self.dtype)
        pending = []
        if weights.shape[1] > 1:
            pending.append(
                self._gather_level_one(union, weights[:, 1])
            )
        for alpha in range(_FIRST_SAMPLED_LEVEL, weights.shape[1]):
            # everything level alpha and beyond could still add,
            # per candidate: sum over r of count * m(endpoint) /
            # samples <= max m. The O(n) stability partition is only
            # worth its price when the levels it could skip hold
            # several accumulator scans' worth of bucket entries, so
            # cheap tail levels (walks die fast on DAGs) are just
            # played out — and checking forces a flush first.
            remaining = float(level_caps[alpha:].sum())
            skippable = int(level_entries[alpha - 1:].sum())
            if (
                alpha > _FIRST_SAMPLED_LEVEL
                and remaining > 0.0
                and skippable >= 3 * acc.size
            ):
                self._flush(acc, pending)
                if self._topk_stable(acc, k, remaining):
                    self.stats.early_terminations += 1
                    break
            pending.append(
                self._gather_level(alpha, union, weights[:, alpha])
            )
        self._flush(acc, pending)
        return acc

    def _topk_stable(
        self, acc: np.ndarray, k: int, remaining: float
    ) -> bool:
        if acc.size <= k:
            return False
        # k+1 largest of the dense accumulator, ascending; one O(n)
        # partition beats bookkeeping the ever-growing touched set
        top = np.partition(acc, acc.size - k - 1)[-(k + 1):]
        return bool(top[1] - top[0] > remaining)

    def __repr__(self) -> str:
        return (
            f"ApproxEstimator(truncation={self.truncation}, "
            f"walks={self.walks!r}, support_cap={self.support_cap})"
        )
