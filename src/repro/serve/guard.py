"""`repro.serve.guard` — admission control and resilience primitives.

The serving stack's overload story lives here, as four small,
independently testable pieces that the broker / router / snapshot
manager thread through their hot paths:

* :class:`Overloaded` / :class:`DeadlineExceeded` — the two explicit
  "no answer, by design" results. Every request submitted to the
  broker ends in exactly one of {answer, ``Overloaded``,
  ``DeadlineExceeded``, error} — nothing is ever silently dropped.
* :class:`CircuitBreaker` — one worker's closed → open → half-open
  failure gate: after ``threshold`` *consecutive* failures the
  breaker opens, dispatch to that worker is refused for
  ``cooldown_s`` seconds, then a single half-open probe either
  restores it (success → closed) or re-opens it.
* :class:`BreakerBoard` — the per-worker breakers of one
  :class:`~repro.cluster.ShardRouter`, sharing a lock, a trip /
  restore counter pair, and an append-only transition log that the
  chaos drill uploads as a CI artifact.
* :class:`Canary` — the decision state of one blue-green snapshot
  swap: a deterministic traffic splitter, per-side error / latency
  reservoirs, and a single-shot promote-or-rollback verdict driven
  by the observed error-rate and p95 deltas.

Everything takes an injectable ``clock`` so tests never sleep:

>>> from repro.serve.guard import CircuitBreaker
>>> t = [0.0]
>>> b = CircuitBreaker(threshold=2, cooldown_s=5.0, clock=lambda: t[0])
>>> b.record_failure(); b.record_failure(); b.state
'open'
>>> b.allow()          # still cooling down
False
>>> t[0] = 6.0
>>> b.allow()          # cooldown elapsed: one half-open probe
True
>>> b.record_success(); b.state
'closed'
"""

from __future__ import annotations

import threading
import time

__all__ = [
    "BreakerBoard",
    "Canary",
    "CircuitBreaker",
    "DeadlineExceeded",
    "Overloaded",
]


class Overloaded(RuntimeError):
    """The admission queue is full; the request was shed, not queued.

    Carries ``retry_after`` (seconds, derived from the broker's
    observed batch latency and current backlog) which the HTTP layer
    surfaces as ``429`` + a ``Retry-After`` header.

    >>> from repro.serve.guard import Overloaded
    >>> exc = Overloaded("queue full (depth 64)", retry_after=0.25)
    >>> exc.retry_after
    0.25
    >>> raise exc
    Traceback (most recent call last):
        ...
    repro.serve.guard.Overloaded: queue full (depth 64)
    """

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class DeadlineExceeded(RuntimeError):
    """A request's deadline expired before its answer was rendered.

    An expired member of a micro-batch is answered with this error
    *without* poisoning the batch: its healthy peers still compute
    and render normally. Surfaced as HTTP ``504``.

    >>> from repro.serve.guard import DeadlineExceeded
    >>> raise DeadlineExceeded("deadline of 5.0ms exceeded")
    Traceback (most recent call last):
        ...
    repro.serve.guard.DeadlineExceeded: deadline of 5.0ms exceeded
    """


#: Breaker states, also exported numerically (``repro_breaker_state``
#: gauge values): closed=0, half_open=1, open=2.
_STATE_VALUES = {"closed": 0, "half_open": 1, "open": 2}


class CircuitBreaker:
    """Closed → open → half-open failure gate for one worker.

    ``record_failure`` counts *consecutive* failures; at
    ``threshold`` the breaker opens and :meth:`allow` refuses
    dispatch for ``cooldown_s`` seconds. The first :meth:`allow`
    after the cooldown grants exactly one half-open probe; its
    outcome (``record_success`` / ``record_failure``) closes or
    re-opens the breaker. Not thread-safe on its own — the
    :class:`BreakerBoard` wraps calls in one shared lock.

    >>> t = [0.0]
    >>> b = CircuitBreaker(threshold=3, cooldown_s=2.0,
    ...                    clock=lambda: t[0])
    >>> b.state, b.allow()
    ('closed', True)
    >>> b.record_failure(); b.record_failure(); b.state
    'closed'
    >>> b.record_success(); b.failures   # success resets the streak
    0
    >>> for _ in range(3): b.record_failure()
    >>> b.state, b.allow()
    ('open', False)
    >>> t[0] = 2.5
    >>> b.allow(), b.state               # one half-open probe
    (True, 'half_open')
    >>> b.allow()                        # second caller must wait
    False
    >>> b.record_failure(); b.state      # probe failed: re-open
    'open'
    """

    __slots__ = ("threshold", "cooldown_s", "state", "failures",
                 "_clock", "_open_until", "_probing")

    def __init__(
        self,
        *,
        threshold: int = 5,
        cooldown_s: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(
                f"threshold must be >= 1, got {threshold}"
            )
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self.state = "closed"
        self.failures = 0
        self._clock = clock
        self._open_until = 0.0
        self._probing = False

    def allow(self) -> bool:
        """May a shard be dispatched to this worker right now?"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self._clock() >= self._open_until:
                self.state = "half_open"
                self._probing = True
                return True
            return False
        # half_open: one probe in flight at a time
        if not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        """A dispatch succeeded: reset the streak, close the breaker."""
        self.failures = 0
        self.state = "closed"
        self._probing = False

    def record_failure(self) -> None:
        """A dispatch failed: extend the streak, maybe open."""
        self.failures += 1
        if self.state == "half_open" or self.failures >= self.threshold:
            self.state = "open"
            self._open_until = self._clock() + self.cooldown_s
            self._probing = False

    @property
    def value(self) -> int:
        """Numeric state for the ``repro_breaker_state`` gauge."""
        return _STATE_VALUES[self.state]


class BreakerBoard:
    """The per-worker circuit breakers of one shard router.

    One shared lock makes the individual breakers thread-safe under
    the router's dispatch executor; ``trips`` / ``restores`` count
    closed→open and →closed transitions, and :attr:`transitions` is
    an append-only log of ``{"t", "worker", "from", "to"}`` rows —
    the chaos drill writes it out as the breaker-transition CI
    artifact.

    >>> t = [0.0]
    >>> board = BreakerBoard(2, threshold=1, cooldown_s=1.0,
    ...                      clock=lambda: t[0])
    >>> board.allow(0), board.allow(1)
    (True, True)
    >>> board.record_failure(0)   # threshold 1: trips immediately
    True
    >>> board.state(0), board.state(1), board.trips
    ('open', 'closed', 1)
    >>> t[0] = 1.5
    >>> board.allow(0)            # half-open probe
    True
    >>> board.record_success(0); board.state(0), board.restores
    ('closed', 1)
    >>> [(row["worker"], row["from"], row["to"])
    ...  for row in board.transitions]
    [(0, 'closed', 'open'), (0, 'open', 'half_open'), (0, 'half_open', 'closed')]
    """

    def __init__(
        self,
        workers: int,
        *,
        threshold: int = 5,
        cooldown_s: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers = [
            CircuitBreaker(
                threshold=threshold, cooldown_s=cooldown_s, clock=clock
            )
            for _ in range(workers)
        ]
        self.trips = 0
        self.restores = 0
        self.fallbacks = 0
        self.transitions: list[dict] = []

    def _log(self, worker: int, before: str, after: str) -> None:
        if before == after:
            return
        if after == "open":
            self.trips += 1
        elif after == "closed":
            self.restores += 1
        self.transitions.append(
            {
                "t": self._clock(),
                "worker": worker,
                "from": before,
                "to": after,
            }
        )

    def allow(self, worker: int) -> bool:
        """May a shard be dispatched to ``worker`` right now?"""
        with self._lock:
            breaker = self._breakers[worker]
            before = breaker.state
            verdict = breaker.allow()
            self._log(worker, before, breaker.state)
            return verdict

    def record_success(self, worker: int) -> None:
        """Worker answered a shard; close its breaker."""
        with self._lock:
            breaker = self._breakers[worker]
            before = breaker.state
            breaker.record_success()
            self._log(worker, before, breaker.state)

    def record_failure(self, worker: int) -> bool:
        """Worker failed a shard; returns True if the breaker opened."""
        with self._lock:
            breaker = self._breakers[worker]
            before = breaker.state
            breaker.record_failure()
            self._log(worker, before, breaker.state)
            return before != "open" and breaker.state == "open"

    def record_fallback(self) -> None:
        """A shard was served by the in-process fallback engine."""
        with self._lock:
            self.fallbacks += 1

    def state(self, worker: int) -> str:
        """Current state name of one worker's breaker."""
        with self._lock:
            return self._breakers[worker].state

    def states(self) -> dict[int, str]:
        """``{worker_index: state_name}`` for every breaker."""
        with self._lock:
            return {
                i: b.state for i, b in enumerate(self._breakers)
            }

    def values(self) -> list[tuple[int, int]]:
        """``(worker, numeric_state)`` pairs for the metrics gauge."""
        with self._lock:
            return [
                (i, b.value) for i, b in enumerate(self._breakers)
            ]

    def describe(self) -> dict:
        """Status snapshot for ``/status`` and ``serve status``."""
        with self._lock:
            return {
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
                "states": {
                    str(i): b.state
                    for i, b in enumerate(self._breakers)
                },
                "trips": self.trips,
                "restores": self.restores,
                "fallbacks": self.fallbacks,
                "transitions": len(self.transitions),
            }


class Canary:
    """Decision state of one blue-green snapshot swap.

    ``blue`` keeps serving while a configurable ``fraction`` of
    traffic is shifted to ``green`` via a deterministic accumulator
    (exactly ``fraction`` of :meth:`choose` calls return green — no
    RNG, so drills are reproducible). Each answered request is
    recorded per side; once green has ``min_requests`` observations,
    :meth:`decide` compares green's error rate and p95 latency
    against blue's and returns ``"rollback"`` when either delta
    exceeds its threshold, ``"promote"`` otherwise.
    :meth:`finalize` is single-shot: the first caller runs the
    promote / rollback callback, every later call is a no-op.

    >>> from repro.serve.guard import Canary
    >>> c = Canary("old-snap", "new-snap", fraction=0.25,
    ...            min_requests=4)
    >>> [c.choose() for _ in range(8)]
    ['green', 'blue', 'blue', 'green', 'blue', 'blue', 'blue', 'green']
    >>> for _ in range(4): c.record("green", True, 0.010)
    >>> for _ in range(4): c.record("blue", True, 0.010)
    >>> c.decide()
    'promote'
    >>> bad = Canary("old-snap", "new-snap", fraction=0.5,
    ...              min_requests=4, max_error_delta=0.10)
    >>> for _ in range(4): bad.record("green", False, 0.010)
    >>> for _ in range(4): bad.record("blue", True, 0.010)
    >>> bad.decide()
    'rollback'
    """

    #: per-side latency reservoir size (newest samples win)
    RESERVOIR = 512

    def __init__(
        self,
        blue,
        green,
        *,
        fraction: float = 0.1,
        min_requests: int = 20,
        max_error_delta: float = 0.10,
        max_p95_ratio: float = 3.0,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(
                f"fraction must be in (0, 1], got {fraction}"
            )
        self.blue = blue
        self.green = green
        self.fraction = float(fraction)
        self.min_requests = int(min_requests)
        self.max_error_delta = float(max_error_delta)
        self.max_p95_ratio = float(max_p95_ratio)
        #: drill hook — when set, green-side batches call this before
        #: computing (raise to simulate a bad new generation)
        self.inject_green_fault = None
        #: finalize callbacks, set by the owner (the serving service):
        #: run exactly once, by whichever caller wins :meth:`finalize`
        self.on_promote = None
        self.on_rollback = None
        self.outcome: str | None = None
        self._acc = 1.0  # first green arrives after 1/fraction picks
        self._lock = threading.Lock()
        self._counts = {
            "blue": {"ok": 0, "errors": 0},
            "green": {"ok": 0, "errors": 0},
        }
        self._latencies = {"blue": [], "green": []}

    def choose(self) -> str:
        """Pick the side for the next batch: ``'blue'`` / ``'green'``."""
        with self._lock:
            if self.outcome is not None:
                return "blue" if self.outcome == "rollback" else "green"
            self._acc += self.fraction
            if self._acc >= 1.0:
                self._acc -= 1.0
                return "green"
            return "blue"

    def record(self, side: str, ok: bool, latency_s: float) -> None:
        """Account one answered request to ``side``."""
        with self._lock:
            counts = self._counts[side]
            if ok:
                counts["ok"] += 1
            else:
                counts["errors"] += 1
            reservoir = self._latencies[side]
            reservoir.append(float(latency_s))
            if len(reservoir) > self.RESERVOIR:
                del reservoir[: -self.RESERVOIR]

    def error_rate(self, side: str) -> float:
        """Observed error fraction of ``side`` (0.0 when unseen)."""
        with self._lock:
            counts = self._counts[side]
            total = counts["ok"] + counts["errors"]
            return counts["errors"] / total if total else 0.0

    def p95(self, side: str) -> float:
        """Observed p95 latency of ``side`` in seconds (0.0 unseen)."""
        with self._lock:
            reservoir = sorted(self._latencies[side])
            if not reservoir:
                return 0.0
            rank = max(0, int(0.95 * len(reservoir)) - 1)
            return reservoir[min(rank, len(reservoir) - 1)]

    def decide(self) -> str | None:
        """``'promote'`` / ``'rollback'`` once conclusive, else None."""
        with self._lock:
            if self.outcome is not None:
                return None
            counts = self._counts["green"]
            seen = counts["ok"] + counts["errors"]
            if seen < self.min_requests:
                return None
        green_err = self.error_rate("green")
        blue_err = self.error_rate("blue")
        if green_err - blue_err > self.max_error_delta:
            return "rollback"
        blue_p95 = self.p95("blue")
        green_p95 = self.p95("green")
        if (
            blue_p95 > 0.0
            and green_p95 > blue_p95 * self.max_p95_ratio
        ):
            return "rollback"
        return "promote"

    def finalize(self, outcome: str) -> bool:
        """Commit the verdict once; returns False for late callers."""
        if outcome not in ("promote", "rollback"):
            raise ValueError(f"unknown canary outcome {outcome!r}")
        with self._lock:
            if self.outcome is not None:
                return False
            self.outcome = outcome
            return True

    def describe(self) -> dict:
        """Status snapshot for ``/status`` and ``serve status``."""
        with self._lock:
            counts = {
                side: dict(c) for side, c in self._counts.items()
            }
            outcome = self.outcome
        return {
            "fraction": self.fraction,
            "min_requests": self.min_requests,
            "max_error_delta": self.max_error_delta,
            "max_p95_ratio": self.max_p95_ratio,
            "outcome": outcome,
            "counts": counts,
            "error_rate": {
                "blue": self.error_rate("blue"),
                "green": self.error_rate("green"),
            },
            "p95_ms": {
                "blue": self.p95("blue") * 1000.0,
                "green": self.p95("green") * 1000.0,
            },
        }
