"""``python -m repro.serve`` — run and poke the similarity server.

Subcommands::

    serve    start the HTTP server (random graph, an edge-list file,
             or the paper's Figure 1 graph); ``--index PATH`` wires a
             persistent precomputation index for near-zero restarts,
             ``--workers K`` shards every micro-batch across K worker
             processes sharing that index (repro.cluster)
    status   GET /status from a running server and summarise its
             cache / engine / broker / cluster / index counters
             (--json for raw)
    warmup   POST /warmup to a running server
    metrics  GET /metrics from a running server and print the raw
             Prometheus text exposition (pipe it to grep, or point a
             Prometheus scrape job at the endpoint directly)
    smoke    self-contained serving smoke test: ephemeral server,
             concurrent clients, assert coalescing, write a latency
             histogram (the CI job); ``--workers`` /
             ``--mutate-mid-run`` turn it into the full multi-process
             hot-swap drill, ``--mutate-stream N`` streams N
             single-edge mutations under load and asserts they all
             swapped through the O(delta) incremental path; the run
             also scrapes ``/metrics`` mid-load and asserts the
             exported counters agree with the broker's stats
    chaos    scripted chaos drill (repro.serve.chaos): kill, hang,
             and corrupt workers under client load, then force a bad
             blue-green canary; asserts zero unaccounted requests,
             bounded p99, breaker trip->recover transitions, and
             canary auto-rollback; writes the report JSON and the
             breaker-transition JSONL (the CI artifacts)

Examples::

    python -m repro.serve serve --nodes 2000 --edges 12000 --port 8321
    python -m repro.serve serve --index graph.simidx --workers 4
    curl -s localhost:8321/status | python -m json.tool
    curl -s -X POST localhost:8321/top_k \
        -d '{"query": 7, "k": 5}' | python -m json.tool
    python -m repro.serve status --url http://localhost:8321
    python -m repro.serve metrics --url http://localhost:8321
    python -m repro.serve smoke --clients 64 --output smoke.json
    python -m repro.serve smoke --workers 2 --mutate-mid-run
    python -m repro.serve smoke --workers 2 --mutate-stream 6
    python -m repro.serve chaos --backend process --workers 2
    python -m repro.serve chaos --backend thread --clients 32

Every subcommand and flag is documented in ``docs/operations.md``
(cross-checked against these parsers by ``tests/test_docs.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.cliopts import (
    add_config_options,
    add_graph_options,
    build_graph,
    config_from_args,
)
from repro.serve.http import serve_http
from repro.serve.service import ServingService

__all__ = ["build_parser", "main", "render_status", "smoke_exit_code"]


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    add_config_options(parser)
    parser.add_argument(
        "--max-cached-columns", type=int, default=4096,
        help="engine column-memo bound (default 4096; 0 = unbounded)",
    )
    parser.add_argument(
        "--column-policy", choices=("lru", "fifo"), default="lru"
    )
    parser.add_argument(
        "--max-batch", type=int, default=32,
        help="broker micro-batch cap (default 32)",
    )
    parser.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="broker linger after the first queued request "
        "(default 2.0 ms)",
    )
    parser.add_argument(
        "--cache-entries", type=int, default=1024,
        help="result-cache bound (default 1024; 0 disables)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes sharing one mmap'd index "
        "(repro.cluster); 0 = serve in-process (default)",
    )
    parser.add_argument(
        "--backend", choices=("process", "thread"), default="process",
        help="cluster backend (with --workers): 'process' (default) "
        "forks worker processes sharing one mmap'd index, 'thread' "
        "runs per-thread engines adopting one in-process index — "
        "zero transport, scales when the kernels release the GIL",
    )
    parser.add_argument(
        "--shard-timeout", type=float, default=120.0,
        help="seconds before a hung worker is killed and its shard "
        "retried (cluster mode only; default 120)",
    )
    parser.add_argument(
        "--transport", choices=("shm", "pickle"), default="shm",
        help="process-backend shard transport: 'shm' (default) "
        "returns results through per-worker shared-memory rings "
        "(only a tiny descriptor crosses the pipe), 'pickle' forces "
        "the classic pickled blocks",
    )
    parser.add_argument(
        "--ring-slots", type=int, default=2,
        help="slots per shared-memory result ring (default 2: "
        "double buffering)",
    )
    parser.add_argument(
        "--ring-mb", type=float, default=64.0,
        help="per-slot shared-memory cap in MiB (default 64); "
        "blocks that do not fit fall back to pickle, counted in "
        "/status",
    )
    parser.add_argument(
        "--no-worker-topk", action="store_true",
        help="disable worker-side top-k selection and ship full "
        "(n, B) score columns to the parent instead of (k, B) "
        "ids+scores (cluster mode only)",
    )
    parser.add_argument(
        "--delta-mode", choices=("auto", "off"), default="auto",
        help="incremental index maintenance: 'auto' (default) applies "
        "small edge batches as O(delta) artifact surgery "
        "(bit-identical to a rebuild), 'off' rebuilds on every "
        "mutation",
    )
    parser.add_argument(
        "--max-delta-fraction", type=float, default=0.10,
        help="largest edit batch (as a fraction of current edges) "
        "still taking the delta path (default 0.10)",
    )
    parser.add_argument(
        "--max-chain-depth", type=int, default=8,
        help="delta generations that may stack before a mutation "
        "folds the chain with a full rebuild (default 8)",
    )
    parser.add_argument(
        "--max-queue-depth", type=int, default=0,
        help="load shedding: reject (HTTP 429 + Retry-After) any "
        "request arriving while this many are already queued in the "
        "broker (default 0 = never shed)",
    )
    parser.add_argument(
        "--default-deadline-ms", type=float, default=0.0,
        help="per-request deadline: a request not answered within "
        "this budget fails with HTTP 504 without poisoning its "
        "micro-batch; per-request 'deadline_ms' overrides it "
        "(default 0 = no deadline)",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=5,
        help="circuit breaker: consecutive crashes/timeouts before a "
        "worker's breaker opens and its shards are answered by the "
        "in-process fallback engine (cluster mode; default 5)",
    )
    parser.add_argument(
        "--breaker-cooldown-s", type=float, default=5.0,
        help="seconds an open breaker waits before a half-open "
        "probe may restore the worker (default 5.0)",
    )
    parser.add_argument(
        "--canary-fraction", type=float, default=0.1,
        help="blue-green mutations (POST /mutate with "
        "'canary': true): fraction of traffic routed to the new "
        "snapshot while it proves itself (default 0.1)",
    )
    parser.add_argument(
        "--no-telemetry", action="store_true",
        help="disable metrics + request tracing (repro.obs); "
        "/metrics then serves a one-line comment document",
    )
    parser.add_argument(
        "--slow-query-ms", type=float, default=250.0,
        help="request traces at or above this total latency (or "
        "that errored) are written to the slow-query log "
        "(default 250.0; pass a negative value to disable)",
    )
    parser.add_argument(
        "--slow-query-log", default=None, metavar="PATH",
        help="JSON-lines file for slow-query traces (bounded: "
        "rotated once to PATH.1 at ~1 MB); default is a memory-only "
        "ring surfaced in /status",
    )


def _build_service(args) -> ServingService:
    config = config_from_args(args).replace(
        max_cached_columns=args.max_cached_columns or None,
        column_policy=args.column_policy,
    )
    return ServingService(
        build_graph(args),
        config,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        cache_entries=args.cache_entries,
        index_path=getattr(args, "index", None),
        workers=args.workers,
        backend=args.backend,
        shard_timeout=args.shard_timeout,
        transport=args.transport,
        ring_slots=args.ring_slots,
        ring_mb=args.ring_mb,
        worker_topk=not args.no_worker_topk,
        delta_mode=args.delta_mode,
        max_delta_fraction=args.max_delta_fraction,
        max_chain_depth=args.max_chain_depth,
        max_queue_depth=args.max_queue_depth,
        default_deadline_ms=args.default_deadline_ms,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown_s,
        canary_fraction=args.canary_fraction,
        telemetry=not args.no_telemetry,
        slow_query_ms=(
            None if args.slow_query_ms < 0 else args.slow_query_ms
        ),
        slow_query_log=args.slow_query_log,
    )


def _metric_total(text: str, name: str) -> float | None:
    """Sum every sample of metric ``name`` in a Prometheus text body.

    Sums across label combinations (``name{...}`` and bare ``name``
    lines both count); returns ``None`` when the series is absent.
    """
    total, found = 0.0, False
    for line in text.splitlines():
        if line.startswith(name + "{") or line.startswith(name + " "):
            total += float(line.rsplit(" ", 1)[1])
            found = True
    return total if found else None


def _http_json(
    url: str, payload: dict | None = None, timeout: float = 30.0
) -> dict:
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method="POST" if data is not None else "GET",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve similarity queries over HTTP with "
        "micro-batch coalescing and snapshot hot-swap.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="start the HTTP server (runs until interrupted)"
    )
    add_graph_options(serve)
    _add_engine_options(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8321,
        help="listen port (0 picks an ephemeral one; default 8321)",
    )
    serve.add_argument(
        "--no-warmup", action="store_true",
        help="skip pre-building Q/Q^T before accepting traffic",
    )
    serve.add_argument(
        "--index", default=None, metavar="PATH",
        help="persistent precomputation index file (repro.index): "
        "loaded (mmap) at startup when its fingerprint matches, "
        "written after warmup/mutate otherwise — restarts then skip "
        "the artifact rebuild entirely",
    )
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request")

    for name, help_text in (
        ("status", "fetch and summarise /status from a running "
         "server (cache/engine/broker counters; --json for the raw "
         "document)"),
        ("warmup", "trigger /warmup on a running server"),
        ("metrics", "fetch /metrics from a running server and print "
         "the raw Prometheus text exposition"),
    ):
        client = sub.add_parser(name, help=help_text)
        client.add_argument(
            "--url", default="http://127.0.0.1:8321",
            help="server base URL (default http://127.0.0.1:8321)",
        )
        if name == "status":
            client.add_argument(
                "--json", action="store_true",
                help="print the raw JSON document instead of the "
                "summary",
            )

    smoke = sub.add_parser(
        "smoke",
        help="self-contained serving smoke test (the CI job): "
        "ephemeral server, concurrent clients, coalescing assert, "
        "latency histogram",
    )
    add_graph_options(smoke)
    _add_engine_options(smoke)
    smoke.add_argument(
        "--clients", type=int, default=64,
        help="concurrent HTTP clients (default 64)",
    )
    smoke.add_argument(
        "--requests-per-client", type=int, default=2,
        help="queries each client issues (default 2)",
    )
    smoke.add_argument("--k", type=int, default=10)
    smoke.add_argument(
        "--port", type=int, default=0,
        help="listen port (default 0 = ephemeral)",
    )
    smoke.add_argument(
        "--output", default="SERVE_smoke.json",
        help="latency-histogram report path "
        "(default SERVE_smoke.json)",
    )
    smoke.add_argument(
        "--index", default=None, metavar="PATH",
        help="persistent precomputation index file, as for serve; "
        "with --mutate-stream every delta swap then persists a "
        ".delta-<seq> segment beside it (the mutation-smoke CI job "
        "compacts and verifies that chain afterwards)",
    )
    smoke.add_argument(
        "--mutate-mid-run", action="store_true",
        help="POST /mutate while the client load is in flight and "
        "assert the hot-swap completed with zero failed requests "
        "(with --workers: that every worker converged to the new "
        "snapshot)",
    )
    smoke.add_argument(
        "--mutate-stream", type=int, default=0, metavar="N",
        help="stream N single-edge mutations while the client load "
        "is in flight and assert every one swapped through the "
        "O(delta) incremental path with zero failed requests (the "
        "mutation-smoke CI job); the swap-latency breakdown lands "
        "in the report JSON",
    )
    smoke.set_defaults(nodes=800, edges=4800)

    chaos = sub.add_parser(
        "chaos",
        help="scripted chaos drill (the chaos-drill CI job): kill, "
        "hang, and corrupt workers under client load, then force a "
        "bad blue-green canary; assert zero unaccounted requests, "
        "bounded p99, breaker trip->recover, and canary "
        "auto-rollback",
    )
    chaos.add_argument(
        "--backend", choices=("process", "thread"), default="process",
        help="cluster backend to attack (default process)",
    )
    chaos.add_argument(
        "--workers", type=int, default=2,
        help="workers in the attacked pool (default 2)",
    )
    chaos.add_argument(
        "--clients", type=int, default=16,
        help="concurrent HTTP clients per wave (default 16)",
    )
    chaos.add_argument(
        "--requests-per-client", type=int, default=4,
        help="queries each client issues per wave (default 4)",
    )
    chaos.add_argument(
        "--nodes", type=int, default=300,
        help="random-graph nodes (default 300)",
    )
    chaos.add_argument(
        "--edges", type=int, default=1800,
        help="random-graph edges (default 1800)",
    )
    chaos.add_argument(
        "--seed", type=int, default=7,
        help="graph + query-stream seed (default 7)",
    )
    chaos.add_argument(
        "--shard-timeout", type=float, default=1.0,
        help="seconds before a hung worker is declared dead "
        "(default 1.0 — short, so the hang wave recovers quickly)",
    )
    chaos.add_argument(
        "--breaker-cooldown-s", type=float, default=0.4,
        help="breaker cooldown before the half-open probe "
        "(default 0.4)",
    )
    chaos.add_argument(
        "--p99-budget-ms", type=float, default=30000.0,
        help="p99 latency bound the drill asserts (default 30000)",
    )
    chaos.add_argument(
        "--output", default="SERVE_chaos.json",
        help="drill report path (default SERVE_chaos.json)",
    )
    chaos.add_argument(
        "--transitions", default="SERVE_chaos_transitions.jsonl",
        metavar="PATH",
        help="breaker-transition JSONL artifact path "
        "(default SERVE_chaos_transitions.jsonl)",
    )
    return parser


def _cmd_serve(args) -> int:
    service = _build_service(args)
    service.start_background()
    if not args.no_warmup:
        print("warming up (building Q / Q^T) ...", flush=True)
        service.warmup()
    server = serve_http(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    snapshot = service.snapshots.current
    mode = (
        f"{args.workers} {args.backend} workers" if args.workers
        else "in-process"
    )
    print(
        f"serving {snapshot.graph!r} measure={args.measure} "
        f"({mode}) on {server.url}  (Ctrl-C to stop)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        service.close()
    return 0


def _cmd_client(args, endpoint: str, post: bool) -> int:
    url = args.url.rstrip("/") + endpoint
    try:
        document = _http_json(url, payload={} if post else None)
    except OSError as exc:
        print(f"cannot reach {url}: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(document, indent=2))
    return 0


def render_status(document: dict) -> str:
    """A terminal-friendly summary of the ``/status`` document.

    Surfaces every caching layer's counters — result-cache hits /
    misses / evictions and hit rate, the engine's artifact builds vs.
    index adoptions and column-memo traffic, broker coalescing, and
    the snapshot manager's hot-swap + persistent-index state.
    """
    config = document.get("config", {})
    engine = document.get("engine", {})
    broker = document.get("broker", {})
    cache = document.get("cache")
    snapshots = document.get("snapshots", {})
    current = snapshots.get("current", {})
    index = snapshots.get("index", {})
    lines = [
        f"uptime        {document.get('uptime_seconds', 0.0):.1f} s",
        f"graph         {current.get('nodes', '?')} nodes / "
        f"{current.get('edges', '?')} edges "
        f"(snapshot seq {current.get('seq', '?')})",
        f"config        measure={config.get('measure')} "
        f"c={config.get('c')} dtype={config.get('dtype')} "
        f"iterations={config.get('num_iterations')} "
        f"mode={config.get('mode', 'exact')}",
        f"broker        batches={broker.get('batches', 0)} "
        f"dispatched={broker.get('dispatched', 0)} "
        f"coalesced={broker.get('coalesced_requests', 0)} "
        f"largest_batch={broker.get('largest_batch', 0)}",
    ]
    if cache is not None:
        lines.append(
            f"result cache  hits={cache.get('hits', 0)} "
            f"misses={cache.get('misses', 0)} "
            f"evictions={cache.get('evictions', 0)} "
            f"entries={cache.get('entries', 0)} "
            f"hit_rate={cache.get('hit_rate', 0.0):.1%}"
        )
    else:
        lines.append("result cache  disabled")
    lines.append(
        f"engine        column hits={engine.get('hits', 0)} "
        f"misses={engine.get('misses', 0)} "
        f"evictions={engine.get('column_evictions', 0)}; builds: "
        f"transition={engine.get('transition_builds', 0)} "
        f"compression={engine.get('compression_builds', 0)} "
        f"matrix={engine.get('matrix_builds', 0)}; "
        f"index_adoptions={engine.get('index_adoptions', 0)}"
    )
    approx = document.get("approx")
    if approx:
        estimator = approx.get("estimator", {})
        lines.append(
            f"approx        epsilon={approx.get('epsilon')} "
            f"walks={approx.get('walk_length')}x"
            f"{approx.get('samples_per_node')} "
            f"index_bytes={approx.get('index_bytes', 0)} "
            f"samples_drawn={estimator.get('samples_drawn', 0)} "
            f"early_term={estimator.get('early_terminations', 0)}"
        )
    delta = snapshots.get("delta", {})
    lines.append(
        f"snapshots     builds={snapshots.get('builds', 0)} "
        f"swaps={snapshots.get('swaps', 0)} "
        f"(delta={delta.get('swaps', 0)} "
        f"full={delta.get('full_swaps', 0)} "
        f"fallbacks={delta.get('fallbacks', 0)})"
    )
    if delta:
        lines.append(
            f"delta         mode={delta.get('mode')} "
            f"chain_depth={delta.get('chain_depth', 0)}/"
            f"{delta.get('max_chain_depth', 0)} "
            f"max_fraction={delta.get('max_delta_fraction', 0.0)} "
            f"segments_loaded={delta.get('segments_loaded', 0)}"
        )
    latency = snapshots.get("swap_latency", {})
    for kind in ("delta", "full"):
        entry = latency.get(kind) or {}
        if not entry.get("count"):
            continue

        def _stage(stage: str) -> str:
            row = entry.get(stage) or {}
            p50 = row.get("p50", 0.0) * 1e3
            p90 = row.get("p90", row.get("max", 0.0)) * 1e3
            mx = row.get("max", 0.0) * 1e3
            return f"{p50:.1f}/{p90:.1f}/{mx:.1f} ms"

        lines.append(
            f"swap latency  {kind}: count={entry['count']} "
            f"(p50/p90/max) build={_stage('build_s')} "
            f"prepare={_stage('prepare_s')} "
            f"commit={_stage('commit_s')} "
            f"total={_stage('total_s')}"
        )
    cluster = document.get("cluster")
    if cluster:
        pool = cluster.get("pool", {})
        alive = sum(
            1 for w in cluster.get("worker_status", ())
            if w.get("alive")
        )
        lines.append(
            f"cluster       workers={pool.get('workers', 0)} "
            f"(alive={alive}) backend={pool.get('backend', 'process')} "
            f"seq={pool.get('current_seq', 0)} "
            f"shards={cluster.get('shards_dispatched', 0)} "
            f"retries={cluster.get('shard_retries', 0)} "
            f"respawns={pool.get('respawns', 0)}"
        )
        transport = pool.get("transport") or {}
        if transport:
            lines.append(
                f"transport     mode={transport.get('mode', '?')} "
                f"ring_bytes={transport.get('ring_bytes_per_worker', 0)}"
                f"/worker replies: "
                f"shm={transport.get('ring_replies', 0)} "
                f"pickle={transport.get('pickle_replies', 0)} "
                f"tasks={transport.get('task_replies', 0)}; "
                f"bytes={transport.get('transport_bytes', 0)}"
            )
            for row in transport.get("per_worker", ()):
                compute = row.get("compute_seconds", 0.0)
                shuttle = row.get("transport_seconds", 0.0)
                busy = compute + shuttle
                share = shuttle / busy if busy > 0 else 0.0
                lines.append(
                    f"  worker {row.get('index', '?')}   "
                    f"compute={compute * 1e3:.1f} ms "
                    f"transport={shuttle * 1e3:.1f} ms "
                    f"(transport share {share:.1%}) "
                    f"bytes={row.get('transport_bytes', 0)}"
                )
    else:
        lines.append("cluster       in-process (workers=0)")
    if index.get("path"):
        lines.append(
            f"index         {index['path']} "
            f"loads={index.get('loads', 0)} "
            f"saves={index.get('saves', 0)} "
            f"load_errors={index.get('load_errors', 0)}"
        )
    else:
        lines.append("index         not configured")
    guard = document.get("guard") or {}
    if guard:
        lines.append(
            f"guard         queue_depth={guard.get('queue_depth', 0)}/"
            f"{guard.get('max_queue_depth', 0) or 'unbounded'} "
            f"shed={guard.get('shed', 0)} "
            f"deadline_ms={guard.get('default_deadline_ms', 0.0):g} "
            f"deadline_expired={guard.get('deadline_expired', 0)}"
        )
        breaker = guard.get("breaker") or {}
        if breaker:
            states = breaker.get("states", {})
            lines.append(
                f"breaker       threshold={breaker.get('threshold')} "
                f"cooldown={breaker.get('cooldown_s')}s "
                f"trips={breaker.get('trips', 0)} "
                f"restores={breaker.get('restores', 0)} "
                f"fallbacks={breaker.get('fallbacks', 0)} states="
                + ",".join(
                    f"{w}:{s}" for w, s in sorted(states.items())
                )
            )
        canary = guard.get("canary")
        if canary:
            counts = canary.get("counts", {})
            green = counts.get("green", {})
            error_rate = canary.get("error_rate", {})
            p95_ms = canary.get("p95_ms", {})
            lines.append(
                f"canary        outcome="
                f"{canary.get('outcome') or 'in-flight'} "
                f"fraction={canary.get('fraction')} "
                f"green ok={green.get('ok', 0)} "
                f"errors={green.get('errors', 0)} "
                f"error_delta="
                f"{error_rate.get('green', 0.0) - error_rate.get('blue', 0.0):+.3f} "
                f"green_p95={p95_ms.get('green', 0.0):.1f}ms"
            )
    obs = document.get("observability") or {}
    if obs.get("enabled"):
        tracing = obs.get("tracing", {})
        slow_log = tracing.get("slow_log", {})
        lines.append(
            f"telemetry     traces={tracing.get('traces_started', 0)} "
            f"slow_queries={tracing.get('slow_queries', 0)} "
            f"(threshold={tracing.get('slow_query_ms')} ms, "
            f"log={slow_log.get('path') or 'memory ring'}); "
            f"scrape /metrics for the full catalog"
        )
    elif obs:
        lines.append("telemetry     disabled (--no-telemetry)")
    return "\n".join(lines)


def _cmd_status(args) -> int:
    url = args.url.rstrip("/") + "/status"
    try:
        document = _http_json(url)
    except OSError as exc:
        print(f"cannot reach {url}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(document, indent=2))
    else:
        print(render_status(document))
    return 0


def _cmd_metrics(args) -> int:
    url = args.url.rstrip("/") + "/metrics"
    try:
        with urllib.request.urlopen(url, timeout=30.0) as response:
            text = response.read().decode()
    except OSError as exc:
        print(f"cannot reach {url}: {exc}", file=sys.stderr)
        return 2
    print(text, end="" if text.endswith("\n") else "\n")
    return 0


def smoke_exit_code(checks: dict, failures: list) -> int:
    """Exit code for a smoke/chaos run: 0 only when *everything* held.

    A non-empty ``failures`` list fails the run even if every named
    check passed — per-request errors must never be summarised away
    into a green exit.

    >>> from repro.serve.__main__ import smoke_exit_code
    >>> smoke_exit_code({"coalesced": True}, [])
    0
    >>> smoke_exit_code({"coalesced": True}, ["query 3: timeout"])
    1
    >>> smoke_exit_code({"coalesced": False}, [])
    1
    """
    return 0 if all(checks.values()) and not failures else 1


def _cmd_smoke(args) -> int:
    from repro.bench.loadgen import LatencyStats

    service = _build_service(args)
    service.start_background()
    service.warmup()
    server = serve_http(service, port=args.port, background=True)
    url = server.url
    total = args.clients * args.requests_per_client
    print(
        f"smoke: {args.clients} clients x "
        f"{args.requests_per_client} requests against {url} "
        + (
            f"({args.workers} {args.backend} workers)" if args.workers
            else "(in-process)"
        ),
        flush=True,
    )

    import numpy as np

    rng = np.random.default_rng(args.seed)
    nodes = service.snapshots.current.graph.num_nodes
    queries = rng.permutation(nodes)[:total] if total <= nodes else (
        rng.integers(0, nodes, size=total)
    )
    streams = [
        [int(q) for q in queries[i::args.clients]]
        for i in range(args.clients)
    ]
    failures: list[str] = []
    latencies: list[float] = []

    def client(stream: list[int]) -> list[float]:
        lat = []
        for q in stream:
            t0 = time.perf_counter()
            try:
                document = _http_json(
                    f"{url}/top_k", {"query": q, "k": args.k}
                )
                if "results" not in document:
                    failures.append(f"query {q}: {document}")
            except Exception as exc:
                failures.append(f"query {q}: {exc}")
            lat.append(time.perf_counter() - t0)
        return lat

    def fetch_metrics() -> str:
        with urllib.request.urlopen(
            f"{url}/metrics", timeout=30.0
        ) as response:
            return response.read().decode()

    mutate_result: dict = {}
    streamed_mutations = 0
    midload_metrics = ""
    wall_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=args.clients) as pool:
        futures = [pool.submit(client, s) for s in streams]
        if not args.no_telemetry:
            # scrape while client traffic is in flight: the endpoint
            # must answer (and parse) mid-load, not just at rest
            time.sleep(0.02)
            try:
                midload_metrics = fetch_metrics()
            except Exception as exc:
                failures.append(f"mid-load /metrics: {exc}")
        if args.mutate_mid_run:
            # fire the hot-swap while client traffic is in flight;
            # the edge is new (u -> u self-loop is almost surely
            # absent in the random graph) so the swap really builds
            time.sleep(0.05)
            try:
                mutate_result = _http_json(
                    f"{url}/mutate", {"add": [[0, 0]]}
                )
            except Exception as exc:
                failures.append(f"mutate: {exc}")
        if args.mutate_stream:
            # stream single-edge mutations under load: self-loops are
            # never generated by the random graphs, so each add is a
            # genuinely new edge and each swap should go through the
            # O(delta) incremental path (batch of 1 edge is always
            # under --max-delta-fraction)
            time.sleep(0.05)
            span = max(1, nodes - 1)
            for j in range(args.mutate_stream):
                node = 1 + j % span  # node 0 belongs to mutate-mid-run
                body = (
                    {"add": [[node, node]]}
                    if (j // span) % 2 == 0
                    else {"remove": [[node, node]]}
                )
                try:
                    _http_json(f"{url}/mutate", body)
                    streamed_mutations += 1
                except Exception as exc:
                    failures.append(f"mutate-stream {j}: {exc}")
        for future in futures:
            latencies.extend(future.result())
    wall = time.perf_counter() - wall_start

    status = _http_json(f"{url}/status")
    final_metrics = ""
    if not args.no_telemetry:
        try:
            final_metrics = fetch_metrics()
        except Exception as exc:
            failures.append(f"final /metrics: {exc}")
    server.stop()
    service.close()

    broker = status["broker"]
    checks = {
        "all_requests_answered": not failures,
        "every_request_dispatched_or_cached": (
            broker["dispatched"] + broker["cache_hits"] >= total
        ),
        "coalescing_happened": broker["largest_batch"] >= 2
        and broker["coalesced_requests"] > 0,
        "fewer_batches_than_requests": (
            broker["batches"] < broker["dispatched"]
        ),
    }
    if not args.no_telemetry:
        # the mid-load scrape proves /metrics answers while the broker
        # is saturated; the final scrape must agree with broker stats
        # because every series is either pull-time (same source) or a
        # hot-path counter incremented exactly once per request
        checks["metrics_scraped_mid_load"] = (
            "# TYPE repro_requests_total counter" in midload_metrics
        )
        checks["metrics_requests_match_broker"] = (
            _metric_total(final_metrics, "repro_requests_total")
            == broker["requests"]
        )
        checks["metrics_zero_dropped"] = (
            broker["requests"]
            == broker["dispatched"] + broker["cache_hits"]
            and broker["errors"] == 0
        )
    if args.mutate_mid_run:
        swapped = status["snapshots"]["swaps"] >= 1
        checks["mutation_swapped_mid_traffic"] = swapped and bool(
            mutate_result.get("snapshot")
        )
    if args.mutate_stream:
        delta_stats = status["snapshots"].get("delta", {})
        # every (max_chain_depth + 1)-th swap folds the chain with a
        # full rebuild by design; all others must be delta swaps
        cycle = args.max_chain_depth + 1
        expected_delta = (
            streamed_mutations - streamed_mutations // cycle
        )
        checks["mutation_stream_all_applied"] = (
            streamed_mutations == args.mutate_stream
        )
        checks["mutations_swapped_via_delta_path"] = (
            delta_stats.get("fallbacks", 0) == 0
            and delta_stats.get("swaps", 0) >= expected_delta
        )
    if args.mode == "approx":
        approx = status.get("approx") or {}
        checks["approx_stats_reported"] = (
            approx.get("walk_length", 0) > 0
            and approx.get("index_bytes", 0) > 0
        )
    cluster = status.get("cluster")
    if cluster is not None:
        workers_alive = [
            w for w in cluster.get("worker_status", ())
            if w.get("alive")
        ]
        checks["all_workers_alive"] = (
            len(workers_alive) == cluster["pool"]["workers"]
        )
        checks["shards_dispatched"] = (
            cluster["shards_dispatched"] > 0
        )
        if args.mutate_mid_run or args.mutate_stream:
            target = cluster["pool"]["current_seq"]
            checks["workers_converged_to_new_snapshot"] = (
                target >= 1
                and all(
                    w.get("current_seq") == target
                    for w in workers_alive
                )
            )
    report = {
        "url": url,
        "workers": args.workers,
        "total_requests": total,
        "wall_seconds": wall,
        "requests_per_second": total / wall if wall > 0 else 0.0,
        "latency": LatencyStats.from_seconds(latencies).to_dict(),
        "broker": broker,
        "cluster": cluster,
        "mutations_streamed": streamed_mutations,
        "delta": status["snapshots"].get("delta"),
        "swap_latency": status["snapshots"].get("swap_latency"),
        "checks": checks,
        "failures": failures[:10],
    }
    out = Path(args.output)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"  {total} requests in {wall * 1e3:.0f} ms "
        f"({report['requests_per_second']:.0f} rps), "
        f"p50 {report['latency']['p50_ms']:.1f} ms / "
        f"p99 {report['latency']['p99_ms']:.1f} ms"
    )
    print(
        f"  batches={broker['batches']} "
        f"mean_batch={broker['mean_batch_size']:.1f} "
        f"largest={broker['largest_batch']}"
    )
    print(f"wrote {out}")
    for name, passed in checks.items():
        print(f"  {'ok' if passed else 'FAIL'} {name}")
    code = smoke_exit_code(checks, failures)
    if code != 0:
        if failures:
            print(f"  first failure: {failures[0]}", file=sys.stderr)
        print("serving smoke test FAILED", file=sys.stderr)
        return code
    print("serving smoke test passed")
    return 0


def _cmd_chaos(args) -> int:
    from repro.serve.chaos import run_drill

    print(
        f"chaos drill: {args.workers} {args.backend} workers, "
        f"{args.clients} clients x {args.requests_per_client} "
        "requests per wave (kill / hang / corrupt / bad green)",
        flush=True,
    )
    report = run_drill(
        backend=args.backend,
        workers=args.workers,
        clients=args.clients,
        requests_per_client=args.requests_per_client,
        nodes=args.nodes,
        edges=args.edges,
        seed=args.seed,
        shard_timeout=args.shard_timeout,
        breaker_cooldown_s=args.breaker_cooldown_s,
        p99_budget_ms=args.p99_budget_ms,
        report_path=args.output,
        transitions_path=args.transitions,
        verbose=True,
    )
    counts = report["counts"]
    print(
        f"  {report['submitted']} requests: ok={counts['ok']} "
        f"shed={counts['shed']} deadline={counts['deadline']} "
        f"error={counts['error']}; p99 "
        f"{report['latency']['p99_ms']:.1f} ms"
    )
    breaker = report["breaker"]
    print(
        f"  breaker trips={breaker.get('trips', 0)} "
        f"restores={breaker.get('restores', 0)} "
        f"fallbacks={breaker.get('fallbacks', 0)}; canary "
        f"outcome={report['canary'].get('outcome')}"
    )
    print(f"wrote {args.output} and {args.transitions}")
    for name, passed in report["checks"].items():
        print(f"  {'ok' if passed else 'FAIL'} {name}")
    code = smoke_exit_code(report["checks"], [])
    print(
        "chaos drill passed" if code == 0
        else "chaos drill FAILED"
    )
    return code


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "warmup":
        return _cmd_client(args, "/warmup", post=True)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "smoke":
        return _cmd_smoke(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
