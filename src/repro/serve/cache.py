"""A versioned, bounded LRU cache for fully-formed query answers.

The engine's column memo caches *score columns* inside one engine;
this cache sits a layer above and caches *rendered answers* (rankings,
pair scores) across snapshot swaps. Keys embed the serving snapshot's
sequence number and the full similarity configuration, so an answer
can never leak across a graph mutation or a config change: after a
swap the new keys simply miss, and the stale generation ages out of
the LRU bound instead of being scanned for and purged.

Thread-safe — the HTTP front end's handler threads, the broker's
event-loop thread, and mutation triggers all touch it concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache`.

    >>> from repro.serve import CacheStats
    >>> CacheStats(hits=3, misses=1).hit_rate
    0.75
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        return dict(self.__dict__, hit_rate=self.hit_rate)


class ResultCache:
    """Bounded LRU mapping of versioned query keys to answers.

    Parameters
    ----------
    max_entries:
        Upper bound on stored answers; the least recently used entry
        is evicted on overflow. Must be positive.

    Examples
    --------
    >>> from repro.serve import ResultCache
    >>> cache = ResultCache(max_entries=2)
    >>> cache.put(("seq0", "top_k", 7), "answer")
    >>> cache.get(("seq0", "top_k", 7))
    'answer'
    >>> cache.get(("seq1", "top_k", 7)) is None   # new snapshot: miss
    True
    >>> cache.put(("a",), 1); cache.put(("b",), 2)
    >>> len(cache), cache.stats.evictions          # bound enforced
    (2, 1)
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, key: Hashable):
        """The cached answer, or ``None`` (which is never a value)."""
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.stats.misses += 1
                return None
            self._data.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        if value is None:
            raise ValueError("cannot cache None (the miss sentinel)")
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                self.stats.evictions += 1
            self.stats.entries = len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.stats.entries = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data
