"""The asyncio request broker: coalesce arrivals into blocked batches.

Queries arrive one at a time — a recommender asks for one user's
top-k, an HTTP thread asks for one pair score — but the blocked
multi-source kernel (PR 2) answers a *batch* of columns for barely
more than one. The broker closes that gap: requests land on an
``asyncio.Queue``; a single dispatcher task takes the first request,
then keeps collecting until either ``max_batch`` requests are in hand
or ``max_wait_ms`` has elapsed since the first one, and dispatches the
whole micro-batch through one
:meth:`~repro.engine.SimilarityEngine.columns` call (one blocked
walk). While a batch computes in the executor, new arrivals pile up on
the queue, so sustained load coalesces even harder — classic
backpressure batching, as in index-serving systems built on
shared-precomputation similarity search (SLING-style serving).

Each batch pins one :class:`~repro.serve.snapshot.Snapshot` for its
whole lifetime, so a concurrent hot-swap never mixes generations
within a batch. Answers are published to the versioned
:class:`~repro.serve.cache.ResultCache` (when one is attached) before
the caller's future resolves.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

import numpy as np

from repro.engine.results import RankedNode, Ranking
from repro.serve.cache import ResultCache
from repro.serve.guard import DeadlineExceeded, Overloaded
from repro.serve.snapshot import Snapshot, SnapshotManager

__all__ = ["BrokerStats", "QueryBroker"]

_STOP = object()


@dataclass
class BrokerStats:
    """Counters proving (or disproving) that coalescing happened.

    >>> from repro.serve import BrokerStats
    >>> stats = BrokerStats(dispatched=6, batches=2)
    >>> stats.mean_batch_size
    3.0
    >>> stats.snapshot()["batches"]
    2
    """

    requests: int = 0
    cache_hits: int = 0
    dispatched: int = 0
    batches: int = 0
    coalesced_requests: int = 0
    largest_batch: int = 0
    errors: int = 0
    shed: int = 0
    deadline_expired: int = 0
    batch_sizes: dict[int, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        return self.dispatched / self.batches if self.batches else 0.0

    def snapshot(self) -> dict:
        out = dict(self.__dict__)
        out["batch_sizes"] = {
            str(size): count
            for size, count in sorted(self.batch_sizes.items())
        }
        out["mean_batch_size"] = self.mean_batch_size
        return out


class _Request:
    """One pending query: what was asked, and the future to resolve."""

    __slots__ = (
        "kind", "node", "u", "k", "include_query", "future",
        "trace", "enqueued", "deadline", "deadline_ms",
    )

    def __init__(
        self,
        kind: str,
        node,
        *,
        u=None,
        k: int = 10,
        include_query: bool = False,
        deadline_ms: float | None = None,
    ) -> None:
        self.kind = kind
        self.node = int(node) if isinstance(node, (int, np.integer)) else node
        self.u = int(u) if isinstance(u, (int, np.integer)) else u
        self.k = int(k)
        self.include_query = bool(include_query)
        self.future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        # telemetry trace (set by the broker only when it is enabled)
        self.trace = None
        self.enqueued = 0.0
        # absolute perf_counter() instant this request must be
        # answered by (None = no deadline); set by the broker at
        # submission from deadline_ms or the server default
        self.deadline: float | None = None
        self.deadline_ms = deadline_ms

    def cache_key(self, snapshot: Snapshot, config_key) -> tuple:
        return (
            snapshot.seq,
            snapshot.version,
            config_key,
            self.kind,
            self.node,
            self.u,
            self.k,
            self.include_query,
        )


class QueryBroker:
    """Coalesce independently arriving queries into blocked batches.

    Parameters
    ----------
    snapshots:
        The :class:`SnapshotManager` whose ``current`` engine answers
        each batch.
    max_batch:
        Hard cap on requests per dispatched batch.
    max_wait_ms:
        How long the dispatcher lingers after the *first* request of a
        batch before dispatching a partial one. ``0`` still coalesces
        everything already queued (pure backpressure batching), it
        just never waits for stragglers.
    cache:
        Optional :class:`ResultCache`; hits are served before the
        request ever queues.
    obs:
        Optional :class:`~repro.obs.Observability`. When set (and
        enabled), every request is traced
        (``coalesce -> dispatch -> compute -> render`` spans) and the
        hot-path histograms (coalesce wait, batch compute, render,
        end-to-end duration) are observed. ``None`` (or a
        :class:`~repro.obs.NullObservability`) keeps the hot path
        free of telemetry work.
    router:
        Optional :class:`~repro.cluster.ShardRouter`. When set, each
        batch's columns are computed by the router's worker processes
        (sharded across them) instead of the in-process engine; the
        snapshot pin goes through the router so a concurrent hot-swap
        can never release a generation a dispatched batch still
        needs. Node resolution and result rendering stay in the
        parent either way.

    Examples
    --------
    Concurrent awaits coalesce into fewer dispatched batches:

    >>> import asyncio
    >>> from repro.graph import figure1_citation_graph
    >>> from repro.serve import QueryBroker, SnapshotManager
    >>> async def demo():
    ...     broker = QueryBroker(SnapshotManager(
    ...         figure1_citation_graph(), measure="gSR*",
    ...         num_iterations=10))
    ...     await broker.start()
    ...     rankings = await asyncio.gather(
    ...         *(broker.top_k(q, k=3) for q in range(8)))
    ...     await broker.stop()
    ...     return len(rankings), broker.stats.batches
    >>> answered, batches = asyncio.run(demo())
    >>> answered, batches <= 8
    (8, True)
    """

    def __init__(
        self,
        snapshots: SnapshotManager,
        *,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        cache: ResultCache | None = None,
        router=None,
        obs=None,
        max_queue_depth: int = 0,
        default_deadline_ms: float = 0.0,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {max_wait_ms}"
            )
        if max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        if default_deadline_ms < 0:
            raise ValueError(
                "default_deadline_ms must be >= 0, got "
                f"{default_deadline_ms}"
            )
        if obs is None:
            from repro.obs import NullObservability

            obs = NullObservability()
        self._obs = obs
        self._snapshots = snapshots
        self.max_batch = max_batch
        self.max_wait = max_wait_ms / 1e3
        self._cache = cache
        self._router = router
        self._config_key = snapshots.config
        self.max_queue_depth = int(max_queue_depth)
        self.default_deadline = float(default_deadline_ms) / 1e3
        self.stats = BrokerStats()
        self._queue: asyncio.Queue | None = None
        self._task: asyncio.Task | None = None
        self._stopping = False
        # EWMA of observed batch compute seconds — the basis of the
        # Retry-After hint a shed request carries
        self._compute_ewma = 0.0
        #: active blue-green decision state (a
        #: :class:`~repro.serve.guard.Canary`), attached by the
        #: service during a canary mutation; None otherwise
        self.canary = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet collected into a batch."""
        return self._queue.qsize() if self._queue is not None else 0

    async def start(self) -> None:
        """Start the dispatcher task on the running event loop."""
        if self.running:
            raise RuntimeError("broker already running")
        self._queue = asyncio.Queue()
        self._stopping = False
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="repro-serve-broker"
        )

    async def stop(self) -> None:
        """Drain-stop: dispatched work finishes, queued work fails."""
        if self._task is None:
            return
        self._stopping = True
        await self._queue.put(_STOP)
        await self._task
        self._task = None
        # anything still queued after the dispatcher exited gets an
        # explicit failure instead of hanging its awaiter forever
        while not self._queue.empty():
            request = self._queue.get_nowait()
            if request is _STOP:
                continue
            if not request.future.done():
                request.future.set_exception(
                    RuntimeError("broker stopped")
                )

    # ------------------------------------------------------------------
    # public query surface
    # ------------------------------------------------------------------
    async def top_k(
        self,
        query,
        k: int = 10,
        include_query: bool = False,
        deadline_ms: float | None = None,
    ) -> Ranking:
        """The coalesced equivalent of ``engine.top_k``."""
        if k < 0:
            # reject before queueing: a bad parameter must fail its
            # own caller, never reach the shared dispatcher
            raise ValueError(f"k must be >= 0, got {k}")
        return await self._submit(
            _Request(
                "top_k", query, k=k, include_query=include_query,
                deadline_ms=deadline_ms,
            )
        )

    async def score(self, u, v, deadline_ms: float | None = None) -> float:
        """The coalesced equivalent of ``engine.score``."""
        return await self._submit(
            _Request("score", v, u=u, deadline_ms=deadline_ms)
        )

    async def _submit(self, request: _Request):
        if not self.running:
            raise RuntimeError(
                "broker is not running (use ServingService as an "
                "async context manager, or call start())"
            )
        self.stats.requests += 1
        request.enqueued = perf_counter()
        budget = (
            request.deadline_ms / 1e3
            if request.deadline_ms is not None
            else self.default_deadline
        )
        if budget > 0:
            request.deadline = request.enqueued + budget
        obs = self._obs
        if obs.enabled:
            if request.kind == "top_k":
                obs.requests_top_k.inc()
            else:
                obs.requests_score.inc()
            request.trace = obs.start_trace(request.kind)
        if self._cache is not None:
            cached = self._cache.get(
                request.cache_key(
                    self._snapshots.current, self._config_key
                )
            )
            if cached is not None:
                self.stats.cache_hits += 1
                if request.trace is not None:
                    request.trace.add_span(
                        "cache",
                        perf_counter() - request.enqueued,
                        start_s=request.enqueued,
                    )
                    obs.finish_trace(request.trace, "cache_hit")
                    obs.request_duration.observe(
                        perf_counter() - request.enqueued
                    )
                return cached
        if (
            self.max_queue_depth
            and self._queue.qsize() >= self.max_queue_depth
        ):
            # admission control: refuse with an explicit, retryable
            # error instead of letting the backlog (and every queued
            # request's latency) grow without bound
            self.stats.shed += 1
            retry_after = self._retry_after_hint()
            if obs.enabled:
                obs.requests_shed.inc()
                obs.request_duration.observe(
                    perf_counter() - request.enqueued
                )
                if request.trace is not None:
                    obs.finish_trace(request.trace, "shed")
            raise Overloaded(
                f"admission queue full (depth {self._queue.qsize()} "
                f">= max_queue_depth {self.max_queue_depth})",
                retry_after=retry_after,
            )
        await self._queue.put(request)
        return await request.future

    def _retry_after_hint(self) -> float:
        """Seconds until the backlog has plausibly drained.

        Derived from the EWMA of observed batch compute time: the
        current queue is ``qsize / max_batch`` batches deep, each
        costing roughly one EWMA; floored at 50ms so a cold broker
        never advertises an instant retry storm.
        """
        per_batch = self._compute_ewma or 0.05
        backlog = self._queue.qsize() / self.max_batch if self._queue else 0.0
        return round(max(0.05, per_batch * (1.0 + backlog)), 3)

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is _STOP:
                return
            batch = [first]
            deadline = loop.time() + self.max_wait
            stop_seen = False
            while len(batch) < self.max_batch:
                # drain whatever is already queued for free —
                # asyncio.wait_for spawns a task + timer per call, a
                # real per-request cost at serving rates, so it is
                # reserved for genuinely waiting on stragglers
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    timeout = deadline - loop.time()
                    if timeout <= 0:
                        break
                    try:
                        item = await asyncio.wait_for(
                            self._queue.get(), timeout
                        )
                    except asyncio.TimeoutError:
                        break
                if item is _STOP:
                    stop_seen = True
                    break
                batch.append(item)
            try:
                await self._dispatch(batch)
            except Exception as exc:
                # last line of defence: _dispatch handles per-request
                # failures itself, but the dispatcher task dying would
                # brick the whole broker — fail this batch and live on
                for request in batch:
                    self._fail_request(request, exc)
            if stop_seen or (self._stopping and self._queue.empty()):
                return

    def _fail_request(
        self, request: _Request, exc: Exception, side: str | None = None
    ) -> None:
        """Fail one request's future and close out its telemetry."""
        self.stats.errors += 1
        if side is not None and self.canary is not None:
            self.canary.record(
                side, False, perf_counter() - request.enqueued
            )
        if request.trace is not None:
            self._obs.request_errors.inc()
            self._obs.request_duration.observe(
                perf_counter() - request.enqueued
            )
            self._obs.finish_trace(request.trace, "error")
        if not request.future.done():
            request.future.set_exception(exc)

    def _expire_request(self, request: _Request) -> None:
        """Answer one request ``DeadlineExceeded``; batch unharmed."""
        self.stats.deadline_expired += 1
        obs = self._obs
        if obs.enabled:
            obs.deadline_exceeded.inc()
            obs.request_duration.observe(
                perf_counter() - request.enqueued
            )
            if request.trace is not None:
                obs.finish_trace(request.trace, "deadline")
        budget_ms = (
            (request.deadline - request.enqueued) * 1e3
            if request.deadline is not None
            else 0.0
        )
        if not request.future.done():
            request.future.set_exception(
                DeadlineExceeded(
                    f"deadline of {budget_ms:.1f}ms exceeded before "
                    "the answer was rendered"
                )
            )

    async def _dispatch(self, batch: list[_Request]) -> None:
        # blue-green: while a canary is live, a deterministic fraction
        # of whole batches reads the green (candidate) snapshot; the
        # rest keep reading blue. Split by batch, not by member, so a
        # batch never mixes generations.
        canary = self.canary
        side = None
        if canary is not None and canary.outcome is None:
            side = canary.choose()
        if self._router is not None:
            # atomic pin: the router counts this batch in-flight
            # against the generation it reads, under the same lock a
            # hot-swap retires generations with
            if side == "green":
                snapshot = self._router.pin_snapshot(canary.green)
            else:
                snapshot = self._router.pin()
            try:
                await self._dispatch_pinned(
                    batch, snapshot, canary_side=side
                )
            finally:
                self._router.unpin(snapshot.seq)
        else:
            snapshot = (
                canary.green
                if side == "green"
                else self._snapshots.current
            )
            await self._dispatch_pinned(
                batch, snapshot, canary_side=side
            )
        if side is not None:
            await self._maybe_finalize_canary()

    async def _maybe_finalize_canary(self) -> None:
        """Promote or roll back once the canary verdict is conclusive."""
        canary = self.canary
        if canary is None:
            return
        verdict = canary.decide()
        if verdict is None or not canary.finalize(verdict):
            return
        callback = (
            canary.on_promote
            if verdict == "promote"
            else canary.on_rollback
        )
        if callback is not None:
            # promote/rollback swap pointers and talk to the worker
            # pool — keep that off the event loop
            await asyncio.get_running_loop().run_in_executor(
                None, callback
            )
        if self.canary is canary:
            self.canary = None

    async def _dispatch_pinned(
        self,
        batch: list[_Request],
        snapshot: Snapshot,
        canary_side: str | None = None,
    ) -> None:
        # deadline checkpoint one: a member already past its deadline
        # is answered DeadlineExceeded here, without poisoning the
        # rest of the batch; if *every* member expired, the dispatch
        # (and its shard fan-out) is skipped entirely
        now = perf_counter()
        live: list[_Request] = []
        for request in batch:
            if request.deadline is not None and now >= request.deadline:
                self._expire_request(request)
            else:
                live.append(request)
        if not live:
            return
        batch = live
        engine = snapshot.engine
        obs = self._obs
        size = len(batch)
        self.stats.batches += 1
        self.stats.dispatched += size
        self.stats.largest_batch = max(self.stats.largest_batch, size)
        self.stats.batch_sizes[size] = (
            self.stats.batch_sizes.get(size, 0) + 1
        )
        if size > 1:
            self.stats.coalesced_requests += size
        if obs.enabled:
            obs.batch_size.observe(size)
            now = perf_counter()
            for request in batch:
                wait = now - request.enqueued
                obs.coalesce_wait.observe(wait)
                if request.trace is not None:
                    request.trace.add_span(
                        "coalesce",
                        wait,
                        start_s=request.enqueued,
                        batch=size,
                    )

        work: list[tuple[_Request, int, int | None]] = []
        for request in batch:
            try:
                node = engine.resolve_node(request.node)
                extra = (
                    engine.resolve_node(request.u)
                    if request.kind == "score"
                    else None
                )
            except Exception as exc:
                self._fail_request(request, exc, side=canary_side)
                continue
            work.append((request, node, extra))
        if not work:
            return

        ids = [node for _, node, _ in work]
        # worker-side top-k: ship selection tasks, not column
        # requests — the workers run the exact parent ranking
        # algorithm and only (k, B) ids+scores cross the pipe
        task_mode = self._router is not None and getattr(
            self._router, "worker_topk", False
        )
        tasks: list[dict] | None = None
        if task_mode:
            tasks = [
                {
                    "op": "score",
                    "query": node,
                    "u": extra,
                }
                if request.kind == "score"
                else {
                    "op": "top_k",
                    "query": node,
                    "k": request.k,
                    "include_query": request.include_query,
                }
                for request, node, extra in work
            ]
        shard_meta = None
        if self._router is not None and obs.enabled:
            shard_meta = {
                "trace_ids": [
                    r.trace.trace_id for r, _, _ in work
                    if r.trace is not None
                ],
            }

        canary = self.canary

        def timed_compute():
            # runs on the executor thread: times the blocked column
            # work itself, separate from the executor hop around it
            t0 = perf_counter()
            if (
                canary_side == "green"
                and canary is not None
                and canary.inject_green_fault is not None
            ):
                # chaos-drill hook: a forced-bad-green raises here,
                # exactly where a genuinely broken new generation
                # would fail its batches
                canary.inject_green_fault()
            if task_mode:
                cols = self._router.compute_tasks(
                    snapshot.seq, tasks, meta=shard_meta
                )
            elif self._router is not None:
                cols = self._router.compute(
                    snapshot.seq, ids, meta=shard_meta
                )
            else:
                cols = engine.columns(ids)
            return cols, t0, perf_counter() - t0

        t_dispatch = perf_counter()
        try:
            columns, t_compute, compute_s = (
                await asyncio.get_running_loop().run_in_executor(
                    None, timed_compute
                )
            )
        except Exception as exc:
            for request, _, _ in work:
                self._fail_request(request, exc, side=canary_side)
            return
        dispatch_s = perf_counter() - t_dispatch
        # feed the Retry-After estimator (EWMA, alpha 0.2)
        self._compute_ewma = (
            compute_s
            if self._compute_ewma == 0.0
            else 0.2 * compute_s + 0.8 * self._compute_ewma
        )
        if obs.enabled:
            obs.batch_compute.observe(compute_s)
            mode = "cluster" if self._router is not None else "local"
            shards = (
                shard_meta.get("shards", ()) if shard_meta else ()
            )
            for request, _, _ in work:
                trace = request.trace
                if trace is None:
                    continue
                trace.add_span(
                    "dispatch",
                    dispatch_s,
                    start_s=t_dispatch,
                    batch=len(ids),
                    mode=mode,
                )
                for shard in shards:
                    trace.add_span(
                        "shard",
                        shard.get("seconds", 0.0),
                        start_s=shard.get("start_s", t_compute),
                        worker=shard.get("worker"),
                        pid=shard.get("pid"),
                        ids=shard.get("ids"),
                        # the worker echoed the batch's trace ids back
                        # over the pipe; True proves this request's id
                        # crossed the process boundary and returned
                        echoed=trace.trace_id
                        in shard.get("trace_ids", ()),
                    )
                trace.add_span(
                    "compute",
                    compute_s,
                    start_s=t_compute,
                    batch=len(ids),
                )

        labels = engine.graph.labels
        for position, (request, node, extra) in enumerate(work):
            # deadline checkpoint two: the compute may have outlived a
            # member's deadline — answer it DeadlineExceeded instead
            # of a stale result, and keep rendering its peers
            if (
                request.deadline is not None
                and perf_counter() >= request.deadline
            ):
                self._expire_request(request)
                continue
            # per-request: a render failure (bad k, exotic payload)
            # fails its own future only — the dispatcher and the rest
            # of the batch must survive any single request
            try:
                t_render = perf_counter()
                result: Any
                if task_mode:
                    result = self._render_task_result(
                        columns[position], node, engine, labels
                    )
                elif request.kind == "top_k":
                    result = Ranking.from_scores(
                        columns[node],
                        query=node,
                        k=request.k,
                        labels=labels,
                        include_query=request.include_query,
                        measure=engine.measure.name,
                    )
                else:
                    result = float(columns[node][extra])
                if self._cache is not None:
                    self._cache.put(
                        request.cache_key(snapshot, self._config_key),
                        result,
                    )
            except Exception as exc:
                self._fail_request(request, exc, side=canary_side)
                continue
            if canary_side is not None and canary is not None:
                canary.record(
                    canary_side,
                    True,
                    perf_counter() - request.enqueued,
                )
            if request.trace is not None:
                done = perf_counter()
                obs.render_seconds.observe(done - t_render)
                request.trace.add_span(
                    "render", done - t_render, start_s=t_render
                )
                obs.request_duration.observe(done - request.enqueued)
                obs.finish_trace(request.trace, "ok")
            if not request.future.done():
                request.future.set_result(result)

    def _render_task_result(self, item, node, engine, labels):
        """A full result from one worker-side task reply.

        Workers ship ranked node ids and scores but never labels —
        the parent holds the identical graph, so re-attaching labels
        here reconstructs the exact :class:`Ranking` the parent path
        would have built, at a fraction of the transport bytes.
        """
        tag = item[0]
        if tag == "error":
            raise RuntimeError(
                f"worker-side selection failed: {item[1]}"
            )
        if tag == "score":
            return float(item[1])
        _, nodes, scores = item
        entries = [
            RankedNode(
                int(n),
                float(s),
                label=labels[int(n)] if labels is not None else None,
            )
            for n, s in zip(nodes, scores)
        ]
        return Ranking(
            entries,
            query=node,
            query_label=(
                labels[node] if labels is not None else None
            ),
            measure=engine.measure.name,
        )
