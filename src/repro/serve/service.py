"""`ServingService` — the one object that is "the server".

Wires a :class:`~repro.serve.snapshot.SnapshotManager`, a
:class:`~repro.serve.cache.ResultCache`, and a
:class:`~repro.serve.broker.QueryBroker` together and owns their
lifecycle. Two ways to run it:

* **async-native** (tests, notebooks, an existing event loop)::

      async with ServingService(graph, measure="gSR*") as service:
          ranking = await service.top_k("h", k=5)

* **background loop** (the HTTP front end, sync callers)::

      service = ServingService(graph)
      service.start_background()
      ranking = service.top_k_sync("h", k=5)   # thread-safe
      service.close()

The sync methods submit coroutines to the service's private event
loop with ``run_coroutine_threadsafe``, so sixty-four HTTP handler
threads all funnel into the same coalescing broker — which is the
entire point.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Iterable, Sequence

from repro.engine.config import SimilarityConfig
from repro.engine.results import Ranking
from repro.graph.digraph import DiGraph
from repro.serve.broker import QueryBroker
from repro.serve.cache import ResultCache
from repro.serve.guard import Canary
from repro.serve.snapshot import Snapshot, SnapshotManager

__all__ = ["ServingService"]


class ServingService:
    """A long-running similarity query service over one graph.

    Parameters
    ----------
    graph:
        The graph to serve (copied into the first snapshot).
    config:
        Optional :class:`~repro.engine.SimilarityConfig`; engine
        keyword overrides (``measure=``, ``c=``, ...) may be passed
        directly.
    max_batch / max_wait_ms:
        Broker coalescing knobs — see
        :class:`~repro.serve.broker.QueryBroker`.
    cache_entries:
        Result-cache bound; ``0`` disables the result cache entirely
        (every request goes through the broker).
    index_path:
        Optional persistent-index file for the snapshot manager: a
        matching index on disk makes startup (and every hot-swap back
        to known content) adopt memory-mapped artifacts instead of
        rebuilding, and freshly built precomputation is persisted
        there on warmup/mutate. See
        :class:`~repro.serve.snapshot.SnapshotManager`.
    workers:
        ``0`` (default) answers batches with the in-process engine.
        Any positive count scales out instead: a
        :class:`~repro.cluster.WorkerPool` of that many worker
        *processes* is forked when the service starts, each
        memory-mapping the same persisted index (one shared page
        cache), and every coalesced micro-batch is split into
        per-worker column shards by a
        :class:`~repro.cluster.ShardRouter`. Mutations run the
        two-phase worker swap automatically; a dead worker is
        respawned and its shard retried, never dropped.
    backend:
        Cluster backend: ``"process"`` (default) forks a
        :class:`~repro.cluster.WorkerPool`; ``"thread"`` runs the
        same router over a :class:`~repro.cluster.ThreadWorkerPool`
        — per-thread engines adopting one in-process index, no
        transport at all (the kernels release the GIL inside
        scipy/BLAS).
    transport / ring_slots / ring_mb:
        Process-backend transport knobs
        (:class:`~repro.cluster.WorkerPool`): ``transport="shm"``
        (default) returns shard results through per-worker
        shared-memory rings with ``ring_slots`` slots of at most
        ``ring_mb`` MiB each; ``transport="pickle"`` forces the
        classic pickled transport.
    worker_topk:
        When true (default, cluster mode), top-k selection runs
        *inside* the workers and only ``(k, B)`` ids+scores cross
        the pipe; false ships full score columns and selects
        parent-side.
    mp_context / shard_timeout:
        Cluster-only knobs, passed to the
        :class:`~repro.cluster.WorkerPool`.
    delta_mode / max_delta_fraction / max_chain_depth:
        Incremental-maintenance knobs, passed to the
        :class:`~repro.serve.snapshot.SnapshotManager`: small edge
        batches go through ``O(delta)`` index surgery (bit-identical
        results, chained ``.delta-<n>`` segments on disk, segment-only
        two-phase swaps in cluster mode) instead of a full rebuild.
        ``delta_mode="off"`` restores the rebuild-every-time
        behaviour.
    telemetry:
        ``True`` (default) builds a full
        :class:`~repro.obs.Observability` — hot-path histograms,
        per-request traces, pull-time callback series over every
        layer's stats, and the ``/metrics`` Prometheus exposition
        (:meth:`metrics_text`). ``False`` swaps in the no-op
        :class:`~repro.obs.NullObservability` (the
        ``telemetry_overhead`` bench tier gates the difference at
        < 5% p50).
    max_queue_depth:
        Load-shedding bound on the broker's admission queue: a request
        arriving while ``max_queue_depth`` requests are already queued
        is rejected immediately with
        :class:`~repro.serve.guard.Overloaded` (HTTP 429 +
        ``Retry-After``) instead of growing the backlog. ``0``
        (default) disables shedding.
    default_deadline_ms:
        Server-wide per-request deadline in milliseconds; a request
        whose answer is not rendered within its budget fails with
        :class:`~repro.serve.guard.DeadlineExceeded` (HTTP 504)
        without poisoning the rest of its micro-batch. Per-request
        ``deadline_ms`` overrides it; ``0`` (default) disables.
    breaker_threshold / breaker_cooldown_s:
        Per-worker circuit breaker (cluster mode): after
        ``breaker_threshold`` consecutive crashes a worker's breaker
        opens and its shards are answered by the in-process fallback
        engine; after ``breaker_cooldown_s`` seconds a half-open
        probe decides whether to restore it. See
        :class:`~repro.serve.guard.BreakerBoard`.
    canary_fraction / canary_min_requests / canary_max_error_delta / canary_max_p95_ratio:
        Blue-green swap policy for :meth:`mutate_canary`: route
        ``canary_fraction`` of traffic to the new (green) snapshot,
        and after ``canary_min_requests`` green observations
        auto-promote — unless green's error rate exceeds blue's by
        more than ``canary_max_error_delta`` or its p95 latency is
        more than ``canary_max_p95_ratio`` times blue's, in which
        case auto-rollback. See :class:`~repro.serve.guard.Canary`.
    slow_query_ms / slow_query_log:
        Slow-query logging knobs (telemetry only): a finished request
        trace at or above ``slow_query_ms`` milliseconds — or one
        that errored — is written to the bounded JSON-lines
        :class:`~repro.obs.SlowQueryLog` at path ``slow_query_log``
        (memory-only ring when ``None``). ``slow_query_ms=None``
        disables the log.

    Examples
    --------
    >>> import asyncio
    >>> from repro.graph import figure1_citation_graph
    >>> from repro.serve import ServingService
    >>> async def demo():
    ...     async with ServingService(
    ...             figure1_citation_graph(), measure="gSR*",
    ...             num_iterations=10) as service:
    ...         ranking = await service.top_k("h", k=2)
    ...         score = await service.score("h", "d")
    ...     return len(ranking), score > 0
    >>> asyncio.run(demo())
    (2, True)
    """

    def __init__(
        self,
        graph: DiGraph,
        config: SimilarityConfig | None = None,
        *,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        cache_entries: int = 1024,
        index_path=None,
        workers: int = 0,
        backend: str = "process",
        mp_context: str = "spawn",
        shard_timeout: float = 120.0,
        transport: str = "shm",
        ring_slots: int = 2,
        ring_mb: float = 64.0,
        worker_topk: bool = True,
        delta_mode: str = "auto",
        max_delta_fraction: float = 0.10,
        max_chain_depth: int = 8,
        telemetry: bool = True,
        slow_query_ms: float | None = 250.0,
        slow_query_log=None,
        max_queue_depth: int = 0,
        default_deadline_ms: float = 0.0,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 5.0,
        canary_fraction: float = 0.1,
        canary_min_requests: int = 20,
        canary_max_error_delta: float = 0.10,
        canary_max_p95_ratio: float = 3.0,
        **overrides,
    ) -> None:
        from repro.obs import NullObservability, Observability

        self.observability = (
            Observability(
                slow_query_ms=slow_query_ms,
                slow_query_log_path=slow_query_log,
            )
            if telemetry
            else NullObservability()
        )
        self.snapshots = SnapshotManager(
            graph,
            config,
            index_path=index_path,
            delta_mode=delta_mode,
            max_delta_fraction=max_delta_fraction,
            max_chain_depth=max_chain_depth,
            **overrides,
        )
        self.cache = (
            ResultCache(cache_entries) if cache_entries else None
        )
        self.cluster = None
        if backend not in ("process", "thread"):
            raise ValueError(
                f"backend must be 'process' or 'thread', got {backend!r}"
            )
        if workers:
            from repro.cluster import (
                ShardRouter,
                ThreadWorkerPool,
                WorkerPool,
            )

            if backend == "thread":
                pool = ThreadWorkerPool(
                    workers=workers,
                    shard_timeout=shard_timeout,
                )
            else:
                pool = WorkerPool(
                    workers=workers,
                    mp_context=mp_context,
                    shard_timeout=shard_timeout,
                    transport=transport,
                    ring_slots=ring_slots,
                    ring_mb=ring_mb,
                    ring_max_batch=max_batch,
                )
            self.cluster = ShardRouter(
                pool,
                self.snapshots,
                obs=self.observability,
                worker_topk=worker_topk,
                breaker_threshold=breaker_threshold,
                breaker_cooldown_s=breaker_cooldown_s,
            )
            self.snapshots.pre_swap = self.cluster.pre_swap
            self.snapshots.post_swap = self.cluster.post_swap
            # blue-green: green generations become servable on the
            # workers without touching the persisted index, and a
            # rollback releases them (respecting in-flight pins)
            self.snapshots.canary_prepare = (
                self.cluster.prepare_generation
            )
            self.snapshots.abort_swap = self.cluster.abort_prepared
        self.broker = QueryBroker(
            self.snapshots,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            cache=self.cache,
            router=self.cluster,
            obs=self.observability,
            max_queue_depth=max_queue_depth,
            default_deadline_ms=default_deadline_ms,
        )
        self.canary_fraction = float(canary_fraction)
        self.canary_min_requests = int(canary_min_requests)
        self.canary_max_error_delta = float(canary_max_error_delta)
        self.canary_max_p95_ratio = float(canary_max_p95_ratio)
        self._canary_lock = threading.Lock()
        self._last_canary = None
        self.observability.bind_service(self)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started_monotonic = time.monotonic()

    @property
    def config(self) -> SimilarityConfig:
        return self.snapshots.config

    # ------------------------------------------------------------------
    # async lifecycle + queries
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "ServingService":
        if self.cluster is not None and not self.cluster.started:
            # forking + priming K workers blocks; keep it off the loop
            await asyncio.get_running_loop().run_in_executor(
                None, self.cluster.start
            )
        await self.broker.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.broker.stop()
        if self.cluster is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self.cluster.stop
            )

    async def top_k(
        self,
        query,
        k: int = 10,
        include_query: bool = False,
        deadline_ms: float | None = None,
    ) -> Ranking:
        """Coalesced top-k (see :meth:`QueryBroker.top_k`).

        ``deadline_ms`` overrides the server's default deadline for
        this request (``None`` inherits it; ``0`` disables).
        """
        return await self.broker.top_k(
            query,
            k=k,
            include_query=include_query,
            deadline_ms=deadline_ms,
        )

    async def score(self, u, v, deadline_ms: float | None = None) -> float:
        """Coalesced pair score (see :meth:`QueryBroker.score`)."""
        return await self.broker.score(u, v, deadline_ms=deadline_ms)

    # ------------------------------------------------------------------
    # background-loop lifecycle + sync queries
    # ------------------------------------------------------------------
    def start_background(self) -> None:
        """Run the broker on a private event loop in a daemon thread.

        In cluster mode (``workers=K``) this is also what forks the
        worker pool — construction alone never spawns a process.
        """
        if self._thread is not None:
            raise RuntimeError("service already running in background")
        if self.cluster is not None and not self.cluster.started:
            self.cluster.start()
        loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.broker.start())
            started.set()
            loop.run_forever()
            # drain-stop once run_forever is released by close()
            loop.run_until_complete(self.broker.stop())
            loop.close()

        self._loop = loop
        self._thread = threading.Thread(
            target=run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        started.wait()

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop the background loop and the worker pool (idempotent)."""
        if self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout)
            self._thread = None
            self._loop = None
        if self.cluster is not None:
            self.cluster.stop()

    def submit(self, coro):
        """Schedule a coroutine on the service loop (thread-safe).

        Returns the ``concurrent.futures.Future`` from
        :func:`asyncio.run_coroutine_threadsafe`.
        """
        if self._loop is None:
            coro.close()  # avoid a never-awaited warning
            raise RuntimeError(
                "background loop not running; call start_background()"
            )
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def top_k_sync(
        self,
        query,
        k: int = 10,
        include_query: bool = False,
        timeout: float | None = 30.0,
        deadline_ms: float | None = None,
    ) -> Ranking:
        """Blocking top-k from any thread (funnels into the broker)."""
        return self.submit(
            self.top_k(
                query,
                k=k,
                include_query=include_query,
                deadline_ms=deadline_ms,
            )
        ).result(timeout)

    def score_sync(
        self,
        u,
        v,
        timeout: float | None = 30.0,
        deadline_ms: float | None = None,
    ) -> float:
        """Blocking pair score from any thread."""
        return self.submit(
            self.score(u, v, deadline_ms=deadline_ms)
        ).result(timeout)

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def warmup(self) -> dict:
        """Pre-build the current snapshot's shared artifacts."""
        return self.snapshots.warmup()

    def mutate(
        self,
        add: Iterable[Sequence] = (),
        remove: Iterable[Sequence] = (),
    ) -> Snapshot:
        """Apply graph edits via background build + snapshot hot-swap.

        Safe to call from any thread while queries are in flight:
        batches pinned to the old snapshot finish on it, later
        batches see the new one.
        """
        return self.snapshots.mutate(add=add, remove=remove)

    def mutate_canary(
        self,
        add: Iterable[Sequence] = (),
        remove: Iterable[Sequence] = (),
        *,
        fraction: float | None = None,
        inject_green_fault=None,
    ):
        """Apply graph edits as a blue-green canary instead of a swap.

        The edited snapshot (*green*) is built and warmed next to the
        serving one (*blue*), then a configurable traffic ``fraction``
        is routed to it. After ``canary_min_requests`` green
        observations the :class:`~repro.serve.guard.Canary` either
        auto-promotes green (normal pointer swap) or auto-rolls back
        to blue when green's error rate or p95 regresses past the
        service thresholds. Returns the live ``Canary`` — poll
        :meth:`canary_status` (or ``/status``) for its outcome.

        ``inject_green_fault`` is a chaos hook: a callable invoked on
        every green-side compute (raise to simulate a bad build).
        Only one canary may be in flight at a time.
        """
        with self._canary_lock:
            if self.broker.canary is not None:
                raise RuntimeError(
                    "a canary is already in flight; wait for it to "
                    "promote or roll back before starting another"
                )
            blue, green = self.snapshots.prepare_canary(
                add=add, remove=remove
            )
            canary = Canary(
                blue,
                green,
                fraction=(
                    self.canary_fraction if fraction is None else fraction
                ),
                min_requests=self.canary_min_requests,
                max_error_delta=self.canary_max_error_delta,
                max_p95_ratio=self.canary_max_p95_ratio,
            )
            canary.inject_green_fault = inject_green_fault
            canary.on_promote = lambda: self.snapshots.promote_canary(
                blue, green
            )
            canary.on_rollback = lambda: self.snapshots.rollback_canary(
                blue, green
            )
            self._last_canary = canary
            self.broker.canary = canary
            return canary

    def canary_status(self) -> dict | None:
        """The most recent canary's :meth:`~repro.serve.guard.Canary.describe`
        document (``None`` if no canary has ever been started)."""
        canary = self._last_canary
        return None if canary is None else canary.describe()

    def status(self) -> dict:
        """A JSON-ready status document (the ``/status`` endpoint).

        Every caching layer reports its counters: ``cache`` is the
        rendered-answer :class:`~repro.serve.cache.ResultCache`
        (hits / misses / evictions / entries / hit_rate), ``engine``
        the current snapshot's
        :class:`~repro.engine.engine.EngineStats` (artifact builds
        vs. index adoptions, column memo hits / misses / evictions),
        and ``snapshots`` the hot-swap and persistent-index counters.
        In approx mode an ``approx`` section adds the Monte-Carlo
        tier's walk geometry and estimator counters (samples drawn,
        early terminations, walk-index bytes).
        """
        engine = self.snapshots.current.engine
        return {
            "engine": engine.stats.snapshot(),
            "approx": engine.approx_status(),
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "config": {
                "measure": self.config.measure,
                "c": self.config.c,
                "num_iterations": self.config.num_iterations,
                "epsilon": self.config.epsilon,
                "weights": self.config.weights,
                "dtype": self.config.dtype,
                "max_cached_columns": self.config.max_cached_columns,
                "column_policy": self.config.column_policy,
                "mode": self.config.mode,
                "seed": self.config.seed,
            },
            "batching": {
                "max_batch": self.broker.max_batch,
                "max_wait_ms": self.broker.max_wait * 1e3,
            },
            "broker": self.broker.stats.snapshot(),
            "cache": (
                self.cache.stats.snapshot()
                if self.cache is not None
                else None
            ),
            "snapshots": self.snapshots.describe(),
            "cluster": (
                self.cluster.describe()
                if self.cluster is not None
                else None
            ),
            "guard": {
                "max_queue_depth": self.broker.max_queue_depth,
                "default_deadline_ms": (
                    self.broker.default_deadline * 1e3
                ),
                "queue_depth": self.broker.queue_depth,
                "shed": self.broker.stats.shed,
                "deadline_expired": self.broker.stats.deadline_expired,
                "breaker": (
                    self.cluster.breakers.describe()
                    if self.cluster is not None
                    else None
                ),
                "canary": self.canary_status(),
            },
            "observability": self.observability.describe(),
        }

    def metrics_text(self, *, ping_workers: bool = True) -> str:
        """The Prometheus text exposition (the ``/metrics`` body).

        Renders every registered series at call time — the callback
        series read the broker/cache/snapshot/cluster/engine stats on
        this very call, so the document always reflects the live
        counters. In cluster mode each worker is pinged first (unless
        ``ping_workers=False``) and its cumulative metric snapshot is
        merged into the registry with replacement semantics, so the
        worker-side series (``repro_worker_*``, one
        ``worker="worker-<i>"`` label per process) cover the whole
        pool; a busy worker keeps its previous contribution.

        With telemetry disabled, returns a one-line comment document
        (still valid Prometheus text).
        """
        obs = self.observability
        if (
            obs.enabled
            and ping_workers
            and self.cluster is not None
            and self.cluster.started
        ):
            self.cluster.collect_worker_metrics(obs.registry)
        return obs.render()
