"""Immutable serving snapshots and the hot-swap that replaces them.

A :class:`Snapshot` pins one ``(graph copy, engine)`` pair for the
lifetime of every query dispatched against it. Mutations never touch a
live snapshot: :meth:`SnapshotManager.mutate` copies the current
graph, applies the edits, builds (and warms) a fresh
:class:`~repro.engine.SimilarityEngine` on the copy, and only then
swaps the ``current`` pointer — an atomic reference assignment under a
lock. Queries that grabbed the old snapshot before the swap finish on
it untouched; the old engine is garbage-collected once the last
in-flight batch drops its reference. That is the classic index-server
"build offline, flip a pointer" discipline, applied to the paper's
preprocess-once regime.

With an ``index_path`` configured, the manager additionally treats the
precomputation as a *persistent* artifact (:mod:`repro.index`): a
replacement engine is warmed from the on-disk
:class:`~repro.index.SimilarityIndex` whenever its graph/config
fingerprint matches the graph about to be served, and freshly built
engines persist their artifacts back after warmup — so a server
restart loads (memory-maps) instead of rebuilding, and N workers
pointed at the same file share one page cache.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Iterable, Sequence

from repro.engine.config import SimilarityConfig
from repro.engine.engine import SimilarityEngine
from repro.graph.digraph import DiGraph
from repro.index.artifacts import IndexMismatchError, SimilarityIndex
from repro.index.store import IndexFormatError

__all__ = ["Snapshot", "SnapshotManager"]


class Snapshot:
    """One immutable generation of the served graph.

    Attributes
    ----------
    engine:
        The :class:`~repro.engine.SimilarityEngine` answering queries
        for this generation. Its graph is private to the snapshot.
    seq:
        Monotonic generation number (0 for the initial snapshot).
    version:
        The underlying graph's mutation counter at snapshot build
        time — part of every result-cache key.

    Examples
    --------
    >>> from repro.graph import figure1_citation_graph
    >>> from repro.serve import SnapshotManager
    >>> manager = SnapshotManager(
    ...     figure1_citation_graph(), measure="gSR*")
    >>> snapshot = manager.current
    >>> snapshot.seq, snapshot.graph.num_nodes
    (0, 11)
    >>> snapshot.describe()["measure"]
    'gSR*'
    """

    __slots__ = ("engine", "seq", "version")

    def __init__(self, engine: SimilarityEngine, seq: int) -> None:
        self.engine = engine
        self.seq = seq
        self.version = engine.graph.version

    @property
    def graph(self) -> DiGraph:
        return self.engine.graph

    def describe(self) -> dict:
        """A JSON-ready summary (the ``/status`` endpoint's shape)."""
        graph = self.engine.graph
        return {
            "seq": self.seq,
            "version": self.version,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "measure": self.engine.measure.name,
            "engine_stats": self.engine.stats.snapshot(),
        }

    def __repr__(self) -> str:
        return (
            f"Snapshot(seq={self.seq}, version={self.version}, "
            f"graph={self.engine.graph!r})"
        )


class SnapshotManager:
    """Owns the ``current`` snapshot and performs atomic hot-swaps.

    Parameters
    ----------
    graph:
        The initial graph. It is **copied** — the manager's snapshots
        never alias caller-owned mutable state, so external mutation
        of ``graph`` cannot corrupt serving (pass ``copy=False`` to
        opt out when the caller hands over ownership).
    config:
        A :class:`~repro.engine.SimilarityConfig`; keyword overrides
        may be passed instead of (or on top of) it, mirroring
        :class:`~repro.engine.SimilarityEngine`.
    index_path:
        Optional path of a persistent :class:`~repro.index.SimilarityIndex`.
        When the file exists and fingerprint-matches the graph being
        (re)built, the engine adopts its (memory-mapped) artifacts
        instead of rebuilding — a restart serves its first query
        without rebuilding ``Q`` / ``Q^T`` / the compressed factors.
        Freshly built engines persist their artifacts back to this
        path on :meth:`warmup` and :meth:`mutate` (atomic
        write-then-rename), keeping the file current with the served
        generation. A stale, corrupt, or missing file is never an
        error — it is simply not used (and overwritten on the next
        persist).
    persist_index:
        Set ``False`` to load from ``index_path`` but never write it
        (read-only replicas sharing a file owned by a primary).

    Attributes
    ----------
    pre_swap / post_swap:
        Optional hot-swap hooks (``None`` by default). ``pre_swap(fresh)``
        runs after the replacement snapshot is built and warmed but
        *before* the pointer swap — raising from it aborts the
        mutation with the old snapshot still serving.
        ``post_swap(old, fresh)`` runs right after the pointer swap.
        :class:`~repro.cluster.ShardRouter` wires these to the
        two-phase worker swap (``prepare`` everywhere, then
        ``commit`` + deferred release), which is how a
        multi-process deployment keeps the zero-failed-requests
        guarantee across a mutation.

    Examples
    --------
    A mutation never touches the serving snapshot — it builds a new
    one and swaps the pointer:

    >>> from repro.graph import figure1_citation_graph
    >>> from repro.serve import SnapshotManager
    >>> manager = SnapshotManager(
    ...     figure1_citation_graph(), measure="gSR*")
    >>> before = manager.current
    >>> fresh = manager.mutate(add=[("a", "k")])
    >>> (before.seq, fresh.seq, manager.current is fresh)
    (0, 1, True)
    >>> before.graph.num_edges < fresh.graph.num_edges
    True
    """

    def __init__(
        self,
        graph: DiGraph,
        config: SimilarityConfig | None = None,
        *,
        copy: bool = True,
        index_path: str | Path | None = None,
        persist_index: bool = True,
        **overrides,
    ) -> None:
        if config is None:
            config = SimilarityConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.config = config
        self.index_path = (
            Path(index_path) if index_path is not None else None
        )
        self.persist_index = persist_index
        self._swap_lock = threading.Lock()   # guards `_current`
        self._build_lock = threading.Lock()  # serialises rebuilds
        self.builds = 0
        self.swaps = 0
        self.index_loads = 0
        self.index_saves = 0
        self.index_load_errors = 0
        self.pre_swap = None
        self.post_swap = None
        self._last_persisted: SimilarityEngine | None = None
        engine = self._engine_for(graph.copy() if copy else graph)
        self._current = Snapshot(engine, seq=0)

    # ------------------------------------------------------------------
    # persistent-index plumbing
    # ------------------------------------------------------------------
    def _engine_for(self, graph: DiGraph) -> SimilarityEngine:
        """An engine over ``graph``, warmed from disk when possible."""
        index = self._load_index()
        if index is not None:
            try:
                # the engine's constructor verifies the fingerprint;
                # one pass, no separate matches() pre-check
                engine = SimilarityEngine.from_index(
                    index, graph, self.config
                )
            except IndexMismatchError:
                pass  # stale content: rebuild (and later overwrite)
            else:
                self.index_loads += 1
                return engine
        return SimilarityEngine(graph, self.config)

    def _load_index(self) -> SimilarityIndex | None:
        if self.index_path is None or not self.index_path.exists():
            return None
        try:
            return SimilarityIndex.load(self.index_path, mmap=True)
        except (IndexFormatError, OSError):
            # unreadable files are treated as absent, not fatal: the
            # next persist overwrites them with a healthy one
            self.index_load_errors += 1
            return None

    def _persist_index(self, engine: SimilarityEngine) -> None:
        if self.index_path is None or not self.persist_index:
            return
        if engine.index is not None or engine is self._last_persisted:
            # adopted from this very file, or already written once —
            # nothing new to put on disk
            return
        engine.export_index().save(self.index_path)
        self._last_persisted = engine
        self.index_saves += 1

    def mark_persisted(self, engine: SimilarityEngine) -> None:
        """Record that ``engine``'s artifacts already sit on
        ``index_path`` (written by another layer).

        :class:`~repro.cluster.ShardRouter` calls this after mirroring
        a generation's index file onto ``index_path``, so the manager
        does not serialise the identical artifacts a second time at
        the end of the same mutation.
        """
        self._last_persisted = engine
        self.index_saves += 1

    @property
    def current(self) -> Snapshot:
        """The snapshot serving new queries right now.

        Callers must read this **once** per logical operation and use
        the returned object throughout — re-reading mid-operation may
        observe a swap.
        """
        with self._swap_lock:
            return self._current

    def warmup(self) -> dict:
        """Force-build the current engine's shared artifacts.

        Builds ``Q`` / ``Q^T`` (and the compressed graph when the
        measure consumes it) so the first real query pays only its
        own walk — with a matching on-disk index these are adoptions,
        not builds. A freshly built engine's artifacts are persisted
        to ``index_path`` afterwards (when configured), making the
        *next* restart's warmup near-zero. Returns the engine's stats
        snapshot.
        """
        snapshot = self.current
        engine = snapshot.engine
        engine.transition_t  # builds transition as a dependency
        if "compressed" in engine.measure.uses:
            engine.compressed
        if engine.config.mode == "approx":
            engine.walk_index
        self._persist_index(engine)
        return engine.stats.snapshot()

    def mutate(
        self,
        add: Iterable[Sequence] = (),
        remove: Iterable[Sequence] = (),
    ) -> Snapshot:
        """Apply edge edits through a background build and hot-swap.

        ``add`` / ``remove`` are iterables of ``(u, v)`` pairs (ids or
        labels, resolved against the *pre-mutation* snapshot). The new
        engine is built and warmed entirely off to the side; the old
        snapshot keeps serving until the atomic pointer swap, and
        in-flight queries that pinned it finish on it afterwards.

        Returns the new :class:`Snapshot`. Raises (and swaps nothing)
        if any edit is invalid — a failed mutation leaves serving
        untouched.
        """
        add = list(add)
        remove = list(remove)
        with self._build_lock:
            base = self.current
            graph = base.graph.copy()
            resolve = base.engine.resolve_node
            for u, v in add:
                graph.add_edge(resolve(u), resolve(v))
            for u, v in remove:
                graph.remove_edge(resolve(u), resolve(v))
            engine = self._engine_for(graph)
            # warm the expensive shared artifacts *before* the swap so
            # post-swap first queries pay only their own walk
            engine.transition_t
            if "compressed" in engine.measure.uses:
                engine.compressed
            if engine.config.mode == "approx":
                engine.walk_index
            self.builds += 1
            fresh = Snapshot(engine, seq=base.seq + 1)
            if self.pre_swap is not None:
                # two-phase swap, phase one: remote holders (cluster
                # workers) build their replacement engines while the
                # old snapshot keeps serving. Raising aborts the
                # mutation with serving untouched.
                self.pre_swap(fresh)
            with self._swap_lock:
                self._current = fresh
                self.swaps += 1
            if self.post_swap is not None:
                self.post_swap(base, fresh)
            # persist only after the swap: the disk write (checksums
            # + full file) must not extend how long traffic is served
            # by the stale snapshot
            self._persist_index(engine)
        return fresh

    def describe(self) -> dict:
        """JSON-ready manager state: current snapshot + swap counters."""
        return {
            "current": self.current.describe(),
            "builds": self.builds,
            "swaps": self.swaps,
            "index": {
                "path": (
                    str(self.index_path)
                    if self.index_path is not None
                    else None
                ),
                "persist": self.persist_index,
                "loads": self.index_loads,
                "saves": self.index_saves,
                "load_errors": self.index_load_errors,
            },
        }

    def __repr__(self) -> str:
        return (
            f"SnapshotManager(current={self.current!r}, "
            f"swaps={self.swaps})"
        )
