"""Immutable serving snapshots and the hot-swap that replaces them.

A :class:`Snapshot` pins one ``(graph copy, engine)`` pair for the
lifetime of every query dispatched against it. Mutations never touch a
live snapshot: :meth:`SnapshotManager.mutate` copies the current
graph, applies the edits, builds (and warms) a fresh
:class:`~repro.engine.SimilarityEngine` on the copy, and only then
swaps the ``current`` pointer — an atomic reference assignment under a
lock. Queries that grabbed the old snapshot before the swap finish on
it untouched; the old engine is garbage-collected once the last
in-flight batch drops its reference. That is the classic index-server
"build offline, flip a pointer" discipline, applied to the paper's
preprocess-once regime.

With an ``index_path`` configured, the manager additionally treats the
precomputation as a *persistent* artifact (:mod:`repro.index`): a
replacement engine is warmed from the on-disk
:class:`~repro.index.SimilarityIndex` whenever its graph/config
fingerprint matches the graph about to be served, and freshly built
engines persist their artifacts back after warmup — so a server
restart loads (memory-maps) instead of rebuilding, and N workers
pointed at the same file share one page cache.
"""

from __future__ import annotations

import gc
import threading
from collections import deque

import numpy as np
from pathlib import Path
from time import perf_counter
from typing import Iterable, Sequence

from repro.engine.config import SimilarityConfig
from repro.engine.engine import SimilarityEngine
from repro.graph.digraph import DiGraph
from repro.index.artifacts import IndexMismatchError, SimilarityIndex
from repro.index.delta import (
    IndexDelta,
    apply_delta,
    apply_delta_file,
    delta_sibling_path,
    find_delta_siblings,
    save_delta,
)
from repro.index.store import IndexFormatError

__all__ = ["Snapshot", "SnapshotManager"]


class Snapshot:
    """One immutable generation of the served graph.

    Attributes
    ----------
    engine:
        The :class:`~repro.engine.SimilarityEngine` answering queries
        for this generation. Its graph is private to the snapshot.
    seq:
        Monotonic generation number (0 for the initial snapshot).
    version:
        The underlying graph's mutation counter at snapshot build
        time — part of every result-cache key.
    delta:
        The :class:`~repro.index.delta.IndexDelta` this generation was
        derived through, or ``None`` when it came from a full build.
    base_seq:
        ``seq`` of the generation a delta snapshot chains onto
        (``None`` for full builds).

    Examples
    --------
    >>> from repro.graph import figure1_citation_graph
    >>> from repro.serve import SnapshotManager
    >>> manager = SnapshotManager(
    ...     figure1_citation_graph(), measure="gSR*")
    >>> snapshot = manager.current
    >>> snapshot.seq, snapshot.graph.num_nodes
    (0, 11)
    >>> snapshot.describe()["measure"]
    'gSR*'
    """

    __slots__ = ("engine", "seq", "version", "delta", "base_seq")

    def __init__(
        self,
        engine: SimilarityEngine,
        seq: int,
        delta: IndexDelta | None = None,
        base_seq: int | None = None,
    ) -> None:
        self.engine = engine
        self.seq = seq
        self.version = engine.graph.version
        self.delta = delta
        self.base_seq = base_seq

    @property
    def graph(self) -> DiGraph:
        return self.engine.graph

    def describe(self) -> dict:
        """A JSON-ready summary (the ``/status`` endpoint's shape)."""
        graph = self.engine.graph
        return {
            "seq": self.seq,
            "version": self.version,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "measure": self.engine.measure.name,
            "swap_kind": "delta" if self.delta is not None else "full",
            "base_seq": self.base_seq,
            "engine_stats": self.engine.stats.snapshot(),
        }

    def __repr__(self) -> str:
        return (
            f"Snapshot(seq={self.seq}, version={self.version}, "
            f"graph={self.engine.graph!r})"
        )


class SnapshotManager:
    """Owns the ``current`` snapshot and performs atomic hot-swaps.

    Parameters
    ----------
    graph:
        The initial graph. It is **copied** — the manager's snapshots
        never alias caller-owned mutable state, so external mutation
        of ``graph`` cannot corrupt serving (pass ``copy=False`` to
        opt out when the caller hands over ownership).
    config:
        A :class:`~repro.engine.SimilarityConfig`; keyword overrides
        may be passed instead of (or on top of) it, mirroring
        :class:`~repro.engine.SimilarityEngine`.
    index_path:
        Optional path of a persistent :class:`~repro.index.SimilarityIndex`.
        When the file exists and fingerprint-matches the graph being
        (re)built, the engine adopts its (memory-mapped) artifacts
        instead of rebuilding — a restart serves its first query
        without rebuilding ``Q`` / ``Q^T`` / the compressed factors.
        Freshly built engines persist their artifacts back to this
        path on :meth:`warmup` and :meth:`mutate` (atomic
        write-then-rename), keeping the file current with the served
        generation. A stale, corrupt, or missing file is never an
        error — it is simply not used (and overwritten on the next
        persist).
    persist_index:
        Set ``False`` to load from ``index_path`` but never write it
        (read-only replicas sharing a file owned by a primary).
    delta_mode:
        ``"auto"`` (default) routes eligible mutations through
        :func:`repro.index.delta.apply_delta` — ``O(delta)`` artifact
        surgery instead of an ``O(graph)`` rebuild, with the result
        bit-identical to a from-scratch build. ``"off"`` forces the
        classic full-rebuild path for every mutation. Any failure on
        the delta path falls back to a full rebuild automatically
        (counted in ``delta_fallbacks``); correctness never depends
        on the fast path.
    max_delta_fraction:
        A mutation batch qualifies for the delta path only while
        ``num_edits <= max_delta_fraction * num_edges`` — past that,
        row surgery approaches rebuild cost and a full build resets
        the chain instead.
    max_chain_depth:
        Deltas stack (each chains onto the previous generation); once
        a swap would exceed this depth the manager takes the full
        path, folding the chain into a fresh base.
    max_overlay_fraction:
        Forwarded to :func:`~repro.index.delta.apply_delta`: how much
        of ``Q`` may live in the overlay patch before the applied
        index is compacted to a clean CSR.

    Attributes
    ----------
    pre_swap / post_swap:
        Optional hot-swap hooks (``None`` by default). ``pre_swap(fresh)``
        runs after the replacement snapshot is built and warmed but
        *before* the pointer swap — raising from it aborts the
        mutation with the old snapshot still serving.
        ``post_swap(old, fresh)`` runs right after the pointer swap.
        :class:`~repro.cluster.ShardRouter` wires these to the
        two-phase worker swap (``prepare`` everywhere, then
        ``commit`` + deferred release), which is how a
        multi-process deployment keeps the zero-failed-requests
        guarantee across a mutation.

    Examples
    --------
    A mutation never touches the serving snapshot — it builds a new
    one and swaps the pointer:

    >>> from repro.graph import figure1_citation_graph
    >>> from repro.serve import SnapshotManager
    >>> manager = SnapshotManager(
    ...     figure1_citation_graph(), measure="gSR*")
    >>> before = manager.current
    >>> fresh = manager.mutate(add=[("a", "k")])
    >>> (before.seq, fresh.seq, manager.current is fresh)
    (0, 1, True)
    >>> before.graph.num_edges < fresh.graph.num_edges
    True
    """

    def __init__(
        self,
        graph: DiGraph,
        config: SimilarityConfig | None = None,
        *,
        copy: bool = True,
        index_path: str | Path | None = None,
        persist_index: bool = True,
        delta_mode: str = "auto",
        max_delta_fraction: float = 0.10,
        max_chain_depth: int = 8,
        max_overlay_fraction: float = 0.25,
        **overrides,
    ) -> None:
        if config is None:
            config = SimilarityConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        if delta_mode not in ("auto", "off"):
            raise ValueError(
                f"delta_mode must be 'auto' or 'off', got {delta_mode!r}"
            )
        self.config = config
        self.index_path = (
            Path(index_path) if index_path is not None else None
        )
        self.persist_index = persist_index
        self.delta_mode = delta_mode
        self.max_delta_fraction = float(max_delta_fraction)
        self.max_chain_depth = int(max_chain_depth)
        self.max_overlay_fraction = float(max_overlay_fraction)
        self._swap_lock = threading.Lock()   # guards `_current`
        self._build_lock = threading.Lock()  # serialises rebuilds
        self.builds = 0
        self.swaps = 0
        self.full_swaps = 0
        self.delta_swaps = 0
        self.delta_fallbacks = 0
        self.last_delta_fallback: str | None = None
        self.delta_segments_loaded = 0
        self.index_loads = 0
        self.index_saves = 0
        self.index_load_errors = 0
        self.pre_swap = None
        self.post_swap = None
        # blue-green hooks (None outside cluster mode): canary_prepare
        # makes a green generation servable by remote holders without
        # touching the persisted index; abort_swap releases it on
        # rollback (the router wires these to prepare_generation /
        # abort_prepared)
        self.canary_prepare = None
        self.abort_swap = None
        self.canary_prepares = 0
        self.canary_promotes = 0
        self.canary_rollbacks = 0
        # optional telemetry hook: called with each recorded swap's
        # stage-timing row (repro.obs feeds these into the
        # repro_swap_stage_seconds histogram)
        self.swap_observer = None
        self._last_persisted: SimilarityEngine | None = None
        self._chain_depth = 0
        self._loaded_chain_depth = 0
        # delta segments are numbered independently of snapshot seq so
        # a restart (seq resets to 0) never overwrites a live segment
        self._delta_seq = 0
        if self.index_path is not None:
            siblings = find_delta_siblings(self.index_path)
            if siblings:
                self._delta_seq = siblings[-1][0]
        self._swap_latency: deque[dict] = deque(maxlen=256)
        # monotonic generation allocator: a rolled-back green's seq is
        # never reused (the pool's deferred release of that generation
        # could otherwise unlink a *new* generation file of the same
        # name)
        self._seq_alloc = 0
        engine = self._engine_for(graph.copy() if copy else graph)
        self._current = Snapshot(engine, seq=0)

    # ------------------------------------------------------------------
    # persistent-index plumbing
    # ------------------------------------------------------------------
    def _engine_for(self, graph: DiGraph) -> SimilarityEngine:
        """An engine over ``graph``, warmed from disk when possible."""
        index = self._load_index()
        if index is not None:
            try:
                # the engine's constructor verifies the fingerprint;
                # one pass, no separate matches() pre-check
                engine = SimilarityEngine.from_index(
                    index, graph, self.config
                )
            except IndexMismatchError:
                pass  # stale content: rebuild (and later overwrite)
            else:
                self.index_loads += 1
                self._chain_depth = self._loaded_chain_depth
                return engine
        self._chain_depth = 0
        return SimilarityEngine(graph, self.config)

    def _load_index(self) -> SimilarityIndex | None:
        if self.index_path is None or not self.index_path.exists():
            return None
        try:
            index = SimilarityIndex.load(self.index_path, mmap=True)
        except (IndexFormatError, OSError):
            # unreadable files are treated as absent, not fatal: the
            # next persist overwrites them with a healthy one
            self.index_load_errors += 1
            return None
        # replay any delta segments persisted beside the base: a
        # restart resumes the chained generation without a rebuild. A
        # broken link ends the chain — serve what replays cleanly and
        # let the fingerprint check decide whether it is current.
        depth = 0
        for _seq, path in find_delta_siblings(self.index_path):
            try:
                index, applied = apply_delta_file(
                    index,
                    path,
                    max_overlay_fraction=self.max_overlay_fraction,
                )
            except (
                IndexFormatError,
                IndexMismatchError,
                OSError,
                ValueError,
            ):
                self.index_load_errors += 1
                break
            depth = applied.chain_depth
            self.delta_segments_loaded += 1
        self._loaded_chain_depth = depth
        return index

    def _persist_index(self, engine: SimilarityEngine) -> None:
        if self.index_path is None or not self.persist_index:
            return
        if engine.index is not None or engine is self._last_persisted:
            # adopted from this very file, or already written once —
            # nothing new to put on disk
            return
        engine.export_index().save(self.index_path)
        self._last_persisted = engine
        self.index_saves += 1
        # the fresh full base supersedes every delta segment chained
        # onto the old one; leaving them behind would corrupt the next
        # restart's replay
        for _seq, path in find_delta_siblings(self.index_path):
            try:
                path.unlink()
            except OSError:
                pass
        self._delta_seq = 0

    def _persist_delta(self, delta: IndexDelta) -> None:
        """Persist one delta segment beside the base index file.

        Skipped (not an error) when there is no base on disk to chain
        onto — the segment would be unreplayable at restart.
        """
        if self.index_path is None or not self.persist_index:
            return
        if not self.index_path.exists():
            return
        self._delta_seq += 1
        save_delta(
            delta, delta_sibling_path(self.index_path, self._delta_seq)
        )
        self.index_saves += 1

    def mark_persisted(self, engine: SimilarityEngine) -> None:
        """Record that ``engine``'s artifacts already sit on
        ``index_path`` (written by another layer).

        :class:`~repro.cluster.ShardRouter` calls this after mirroring
        a generation's index file onto ``index_path``, so the manager
        does not serialise the identical artifacts a second time at
        the end of the same mutation.
        """
        self._last_persisted = engine
        self.index_saves += 1

    @property
    def current(self) -> Snapshot:
        """The snapshot serving new queries right now.

        Callers must read this **once** per logical operation and use
        the returned object throughout — re-reading mid-operation may
        observe a swap.
        """
        with self._swap_lock:
            return self._current

    def warmup(self) -> dict:
        """Force-build the current engine's shared artifacts.

        Builds ``Q`` / ``Q^T`` (and the compressed graph when the
        measure consumes it) so the first real query pays only its
        own walk — with a matching on-disk index these are adoptions,
        not builds. A freshly built engine's artifacts are persisted
        to ``index_path`` afterwards (when configured), making the
        *next* restart's warmup near-zero. Returns the engine's stats
        snapshot.
        """
        snapshot = self.current
        engine = snapshot.engine
        engine.transition_t  # builds transition as a dependency
        if "compressed" in engine.measure.uses:
            engine.compressed
        if engine.config.mode == "approx":
            engine.walk_index
        self._persist_index(engine)
        return engine.stats.snapshot()

    def mutate(
        self,
        add: Iterable[Sequence] = (),
        remove: Iterable[Sequence] = (),
    ) -> Snapshot:
        """Apply edge edits through a background build and hot-swap.

        ``add`` / ``remove`` are iterables of ``(u, v)`` pairs (ids or
        labels, resolved against the *pre-mutation* snapshot). The new
        engine is built and warmed entirely off to the side; the old
        snapshot keeps serving until the atomic pointer swap, and
        in-flight queries that pinned it finish on it afterwards.

        With ``delta_mode="auto"`` a batch that stays under
        ``max_delta_fraction`` of the edge set goes through the
        ``O(delta)`` incremental path (:func:`repro.index.delta
        .apply_delta`): only the touched CSR rows and factor rows are
        recomputed, the result is bit-identical to a full rebuild, and
        only a tiny chained segment is persisted. Any delta-path
        failure falls back to the full rebuild transparently.

        Returns the new :class:`Snapshot`. Raises (and swaps nothing)
        if any edit is invalid — a failed mutation leaves serving
        untouched.
        """
        add = list(add)
        remove = list(remove)
        with self._build_lock:
            # pause the cyclic collector for the build: the clone/
            # splice allocates tens of thousands of small containers,
            # and each allocation burst otherwise triggers full GC
            # passes over the millions of tracked adjacency sets of
            # every live generation — O(live graphs) work swamping the
            # O(delta) build. Mutation creates no cycles; whatever
            # garbage it drops is reclaimed by refcounting or the next
            # natural collection.
            gc_was_enabled = gc.isenabled()
            if gc_was_enabled:
                gc.disable()
            try:
                fresh = self._mutate_locked(add, remove)
            finally:
                if gc_was_enabled:
                    gc.enable()
        return fresh

    def _mutate_locked(
        self, add: list, remove: list
    ) -> Snapshot:
        base = self.current
        add_ids = self._resolve_pairs(base.engine, add)
        remove_ids = self._resolve_pairs(base.engine, remove)
        # validate up front (KeyError on a bad removal) so *both*
        # paths inherit the all-or-nothing contract
        eff_add, eff_rem = self._effective_edits(
            base.graph, add_ids, remove_ids
        )
        fresh: Snapshot | None = None
        if self._delta_eligible(base, eff_add, eff_rem):
            try:
                fresh = self._mutate_delta(base, eff_add, eff_rem)
            except Exception as exc:  # noqa: BLE001 — any delta
                # failure must degrade to the always-correct full
                # rebuild, never to a failed mutation
                self.delta_fallbacks += 1
                self.last_delta_fallback = (
                    f"{type(exc).__name__}: {exc}"
                )
        if fresh is None:
            fresh = self._mutate_full(base, add_ids, remove_ids)
        return fresh

    @staticmethod
    def _resolve_pairs(
        engine: SimilarityEngine, pairs: list
    ) -> list[tuple[int, int]]:
        """``(u, v)`` pairs resolved to dense node ids.

        All-integer batches take a vectorised range check (integers
        are always node ids — :meth:`SimilarityEngine.resolve_node`'s
        rule); anything else falls back to per-pair label resolution.
        A mutation batch at serving scale is tens of thousands of id
        pairs, so the per-edge Python loop matters.
        """
        if not pairs:
            return []
        try:
            raw = np.asarray(pairs)
        except (TypeError, ValueError):
            raw = np.empty(0, dtype=object)
        if (
            raw.dtype.kind in "iu"
            and raw.ndim == 2
            and raw.shape[1] == 2
        ):
            arr = raw.astype(np.int64, copy=False)
            n = engine.graph.num_nodes
            flat = arr.ravel()
            bad = flat[(flat < 0) | (flat >= n)]
            if bad.size:
                raise IndexError(
                    f"node {int(bad[0])} out of range for graph "
                    f"with {n} nodes"
                )
            return arr
        resolve = engine.resolve_node
        return [(resolve(u), resolve(v)) for u, v in pairs]

    @staticmethod
    def _effective_edits(
        graph: DiGraph,
        add_ids,
        remove_ids,
    ) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
        """Net ``(added, removed)`` batches against ``graph``.

        Replicates the sequential adds-then-removes semantics of the
        full path without touching a graph copy: adding an existing
        edge is a no-op, removing a just-added edge cancels the add,
        and removing an absent (or already-removed) edge raises
        ``KeyError`` exactly like :meth:`DiGraph.remove_edge`. All
        membership checks run vectorised against the graph's cached
        sorted edge arrays — no per-edge ``has_edge`` loop.
        """
        n = graph.num_nodes
        add_arr = np.asarray(add_ids, dtype=np.int64).reshape(-1, 2)
        rem_arr = np.asarray(remove_ids, dtype=np.int64).reshape(-1, 2)
        if n == 0 or (add_arr.size == 0 and rem_arr.size == 0):
            return [], []
        heads, tails = graph.edge_arrays()
        keys = heads.astype(np.int64) * n + tails  # sorted ascending

        def _present(candidates: np.ndarray) -> np.ndarray:
            pos = np.searchsorted(keys, candidates)
            pos_c = np.minimum(pos, max(0, keys.size - 1))
            if keys.size == 0:
                return np.zeros(candidates.size, dtype=bool)
            return keys[pos_c] == candidates

        add_keys = np.unique(add_arr[:, 0] * n + add_arr[:, 1])
        added_keys = add_keys[~_present(add_keys)]
        rem_keys = rem_arr[:, 0] * n + rem_arr[:, 1]
        rem_unique, rem_counts = np.unique(
            rem_keys, return_counts=True
        )
        if (rem_counts > 1).any():
            # the second removal of the same edge sees it gone
            dup = int(rem_unique[rem_counts > 1][0])
            raise KeyError(
                f"edge {dup // n} -> {dup % n} not in graph"
            )
        cancelled = np.isin(rem_unique, added_keys)
        must_exist = rem_unique[~cancelled]
        present = _present(must_exist)
        if not present.all():
            missing = int(must_exist[~present][0])
            raise KeyError(
                f"edge {missing // n} -> {missing % n} not in graph"
            )
        added_final = added_keys[~np.isin(added_keys, rem_unique)]
        return (
            [(int(k) // n, int(k) % n) for k in added_final],
            [(int(k) // n, int(k) % n) for k in must_exist],
        )

    def _delta_eligible(
        self,
        base: Snapshot,
        eff_add: list[tuple[int, int]],
        eff_rem: list[tuple[int, int]],
    ) -> bool:
        if self.delta_mode != "auto":
            return False
        num_edits = len(eff_add) + len(eff_rem)
        if num_edits == 0:
            return False  # no-op batch: let the full path handle it
        if self._chain_depth + 1 > self.max_chain_depth:
            return False  # fold the chain into a fresh base
        budget = self.max_delta_fraction * max(1, base.graph.num_edges)
        return num_edits <= budget

    def _warm(self, engine: SimilarityEngine) -> None:
        # warm the expensive shared artifacts *before* the swap so
        # post-swap first queries pay only their own walk
        engine.transition_t
        if "compressed" in engine.measure.uses:
            engine.compressed
        if engine.config.mode == "approx":
            engine.walk_index

    def _record_swap(
        self, kind: str, build_s: float, prepare_s: float, commit_s: float
    ) -> None:
        row = {
            "kind": kind,
            "build_s": build_s,
            "prepare_s": prepare_s,
            "commit_s": commit_s,
            "total_s": build_s + prepare_s + commit_s,
        }
        self._swap_latency.append(row)
        if self.swap_observer is not None:
            try:
                self.swap_observer(row)
            except Exception:  # noqa: BLE001 - telemetry must never
                pass  # fail a mutation

    def _swap_pointer(self, base: Snapshot, fresh: Snapshot) -> tuple:
        """Two-phase swap; returns ``(prepare_s, commit_s)``."""
        t_prepare = perf_counter()
        if self.pre_swap is not None:
            # two-phase swap, phase one: remote holders (cluster
            # workers) build their replacement engines while the
            # old snapshot keeps serving. Raising aborts the
            # mutation with serving untouched.
            self.pre_swap(fresh)
        t_commit = perf_counter()
        if self.pre_swap is not None:
            prepare_s = t_commit - t_prepare
        else:
            prepare_s = 0.0
        with self._swap_lock:
            self._current = fresh
            self.swaps += 1
        if self.post_swap is not None:
            self.post_swap(base, fresh)
        return prepare_s, perf_counter() - t_commit

    def _mutate_delta(
        self,
        base: Snapshot,
        eff_add: list[tuple[int, int]],
        eff_rem: list[tuple[int, int]],
    ) -> Snapshot:
        """The ``O(delta)`` path: artifact surgery, no rebuild."""
        t_build = perf_counter()
        graph = base.graph.copy_with_edits(eff_add, eff_rem)
        base_index = base.engine.export_index()
        applied, delta = apply_delta(
            base_index,
            eff_add,
            eff_rem,
            max_overlay_fraction=self.max_overlay_fraction,
            chain_depth=self._chain_depth + 1,
        )
        # from_index re-verifies the fingerprint against the edited
        # graph — a wrong splice can never reach serving
        engine = SimilarityEngine.from_index(applied, graph, self.config)
        self._warm(engine)
        self.builds += 1
        build_s = perf_counter() - t_build
        fresh = Snapshot(
            engine,
            seq=self._alloc_seq(base),
            delta=delta,
            base_seq=base.seq,
        )
        prepare_s, commit_s = self._swap_pointer(base, fresh)
        self._chain_depth = delta.chain_depth
        self.delta_swaps += 1
        # persist only after the swap (segment write must not extend
        # how long traffic is served by the stale snapshot); a delta
        # swap ships the segment, never the full artifact file
        self._persist_delta(delta)
        self._record_swap("delta", build_s, prepare_s, commit_s)
        return fresh

    def _mutate_full(
        self,
        base: Snapshot,
        add_ids: list[tuple[int, int]],
        remove_ids: list[tuple[int, int]],
    ) -> Snapshot:
        """The classic path: copy the graph, rebuild, hot-swap."""
        t_build = perf_counter()
        graph = base.graph.copy()
        for u, v in add_ids:
            graph.add_edge(u, v)
        for u, v in remove_ids:
            graph.remove_edge(u, v)
        engine = self._engine_for(graph)
        self._warm(engine)
        self.builds += 1
        build_s = perf_counter() - t_build
        fresh = Snapshot(engine, seq=self._alloc_seq(base))
        prepare_s, commit_s = self._swap_pointer(base, fresh)
        self.full_swaps += 1
        # persist only after the swap: the disk write (checksums
        # + full file) must not extend how long traffic is served
        # by the stale snapshot
        self._persist_index(engine)
        self._record_swap("full", build_s, prepare_s, commit_s)
        return fresh

    def _alloc_seq(self, base: Snapshot) -> int:
        """Next generation number — monotonic, never reused.

        Equals ``base.seq + 1`` on the ordinary mutation path; only a
        rolled-back canary leaves a gap (its seq is burned, so the
        pool's deferred release of the rejected generation can never
        collide with a later one).
        """
        self._seq_alloc = max(self._seq_alloc, base.seq) + 1
        return self._seq_alloc

    # ------------------------------------------------------------------
    # blue-green (canary) swaps
    # ------------------------------------------------------------------
    def prepare_canary(
        self,
        add: Iterable[Sequence] = (),
        remove: Iterable[Sequence] = (),
    ) -> tuple[Snapshot, Snapshot]:
        """Build a green candidate beside the serving blue snapshot.

        The blue-green variant of :meth:`mutate` phase one: the edited
        graph's engine is built, warmed, and (in cluster mode) made
        servable by every worker via the ``canary_prepare`` hook — but
        the ``current`` pointer is *not* swapped and the persisted
        index is *not* touched. Returns ``(blue, green)``; the caller
        (the serving service) shifts a traffic fraction to green and
        later calls :meth:`promote_canary` or :meth:`rollback_canary`.

        Raises (building nothing servable) if any edit is invalid,
        exactly like :meth:`mutate`.
        """
        add = list(add)
        remove = list(remove)
        with self._build_lock:
            base = self.current
            add_ids = self._resolve_pairs(base.engine, add)
            remove_ids = self._resolve_pairs(base.engine, remove)
            # validate with mutate's exact all-or-nothing semantics
            self._effective_edits(base.graph, add_ids, remove_ids)
            graph = base.graph.copy()
            for u, v in add_ids:
                graph.add_edge(u, v)
            for u, v in remove_ids:
                graph.remove_edge(u, v)
            engine = self._engine_for(graph)
            self._warm(engine)
            self.builds += 1
            green = Snapshot(engine, seq=self._alloc_seq(base))
            if self.canary_prepare is not None:
                # remote holders load the green generation; raising
                # aborts the canary with blue serving untouched
                self.canary_prepare(green)
            self.canary_prepares += 1
            return base, green

    def promote_canary(self, blue: Snapshot, green: Snapshot) -> Snapshot:
        """Make the green candidate the serving snapshot.

        Runs the ordinary two-phase swap (workers already hold the
        generation, so the prepare phase is an adoption, not a
        rebuild) and persists green's index — from here on this is
        exactly a completed :meth:`mutate`.
        """
        with self._build_lock:
            prepare_s, commit_s = self._swap_pointer(blue, green)
            self.full_swaps += 1
            self.canary_promotes += 1
            self._persist_index(green.engine)
            self._record_swap("full", 0.0, prepare_s, commit_s)
            return green

    def rollback_canary(self, blue: Snapshot, green: Snapshot) -> Snapshot:
        """Reject the green candidate; blue keeps serving untouched.

        Nothing was swapped and nothing was persisted, so rollback is
        pure release: the ``abort_swap`` hook lets remote holders drop
        the green generation (respecting any green batch still in
        flight). Returns ``blue``.
        """
        with self._build_lock:
            self.canary_rollbacks += 1
            if self.abort_swap is not None:
                self.abort_swap(green)
            return blue

    def swap_latency_summary(self) -> dict:
        """count/p50/p90/max per stage, split full vs delta swaps.

        Aggregated over the last 256 swaps. Stages: ``build`` (graph
        edit + artifact work + warmup), ``prepare`` (two-phase
        ``pre_swap`` fan-out), ``commit`` (pointer flip +
        ``post_swap``).
        """
        out: dict = {}
        rows = list(self._swap_latency)
        for kind in ("full", "delta"):
            kind_rows = [r for r in rows if r["kind"] == kind]
            entry: dict = {"count": len(kind_rows)}
            if kind_rows:
                for stage in (
                    "build_s", "prepare_s", "commit_s", "total_s"
                ):
                    vals = sorted(r[stage] for r in kind_rows)
                    entry[stage] = {
                        "p50": vals[len(vals) // 2],
                        "p90": vals[min(
                            len(vals) - 1, (len(vals) * 9) // 10
                        )],
                        "max": vals[-1],
                    }
            out[kind] = entry
        return out

    def describe(self) -> dict:
        """JSON-ready manager state: current snapshot + swap counters."""
        return {
            "current": self.current.describe(),
            "builds": self.builds,
            "swaps": self.swaps,
            "delta": {
                "mode": self.delta_mode,
                "max_delta_fraction": self.max_delta_fraction,
                "max_chain_depth": self.max_chain_depth,
                "chain_depth": self._chain_depth,
                "swaps": self.delta_swaps,
                "full_swaps": self.full_swaps,
                "fallbacks": self.delta_fallbacks,
                "last_fallback": self.last_delta_fallback,
                "segments_loaded": self.delta_segments_loaded,
            },
            "canary": {
                "prepares": self.canary_prepares,
                "promotes": self.canary_promotes,
                "rollbacks": self.canary_rollbacks,
            },
            "swap_latency": self.swap_latency_summary(),
            "index": {
                "path": (
                    str(self.index_path)
                    if self.index_path is not None
                    else None
                ),
                "persist": self.persist_index,
                "loads": self.index_loads,
                "saves": self.index_saves,
                "load_errors": self.index_load_errors,
            },
        }

    def __repr__(self) -> str:
        return (
            f"SnapshotManager(current={self.current!r}, "
            f"swaps={self.swaps})"
        )
