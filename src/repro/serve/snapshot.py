"""Immutable serving snapshots and the hot-swap that replaces them.

A :class:`Snapshot` pins one ``(graph copy, engine)`` pair for the
lifetime of every query dispatched against it. Mutations never touch a
live snapshot: :meth:`SnapshotManager.mutate` copies the current
graph, applies the edits, builds (and warms) a fresh
:class:`~repro.engine.SimilarityEngine` on the copy, and only then
swaps the ``current`` pointer — an atomic reference assignment under a
lock. Queries that grabbed the old snapshot before the swap finish on
it untouched; the old engine is garbage-collected once the last
in-flight batch drops its reference. That is the classic index-server
"build offline, flip a pointer" discipline, applied to the paper's
preprocess-once regime.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

from repro.engine.config import SimilarityConfig
from repro.engine.engine import SimilarityEngine
from repro.graph.digraph import DiGraph

__all__ = ["Snapshot", "SnapshotManager"]


class Snapshot:
    """One immutable generation of the served graph.

    Attributes
    ----------
    engine:
        The :class:`~repro.engine.SimilarityEngine` answering queries
        for this generation. Its graph is private to the snapshot.
    seq:
        Monotonic generation number (0 for the initial snapshot).
    version:
        The underlying graph's mutation counter at snapshot build
        time — part of every result-cache key.
    """

    __slots__ = ("engine", "seq", "version")

    def __init__(self, engine: SimilarityEngine, seq: int) -> None:
        self.engine = engine
        self.seq = seq
        self.version = engine.graph.version

    @property
    def graph(self) -> DiGraph:
        return self.engine.graph

    def describe(self) -> dict:
        """A JSON-ready summary (the ``/status`` endpoint's shape)."""
        graph = self.engine.graph
        return {
            "seq": self.seq,
            "version": self.version,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "measure": self.engine.measure.name,
            "engine_stats": self.engine.stats.snapshot(),
        }

    def __repr__(self) -> str:
        return (
            f"Snapshot(seq={self.seq}, version={self.version}, "
            f"graph={self.engine.graph!r})"
        )


class SnapshotManager:
    """Owns the ``current`` snapshot and performs atomic hot-swaps.

    Parameters
    ----------
    graph:
        The initial graph. It is **copied** — the manager's snapshots
        never alias caller-owned mutable state, so external mutation
        of ``graph`` cannot corrupt serving (pass ``copy=False`` to
        opt out when the caller hands over ownership).
    config:
        A :class:`~repro.engine.SimilarityConfig`; keyword overrides
        may be passed instead of (or on top of) it, mirroring
        :class:`~repro.engine.SimilarityEngine`.
    """

    def __init__(
        self,
        graph: DiGraph,
        config: SimilarityConfig | None = None,
        *,
        copy: bool = True,
        **overrides,
    ) -> None:
        if config is None:
            config = SimilarityConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.config = config
        self._swap_lock = threading.Lock()   # guards `_current`
        self._build_lock = threading.Lock()  # serialises rebuilds
        self.builds = 0
        self.swaps = 0
        engine = SimilarityEngine(
            graph.copy() if copy else graph, config
        )
        self._current = Snapshot(engine, seq=0)

    @property
    def current(self) -> Snapshot:
        """The snapshot serving new queries right now.

        Callers must read this **once** per logical operation and use
        the returned object throughout — re-reading mid-operation may
        observe a swap.
        """
        with self._swap_lock:
            return self._current

    def warmup(self) -> dict:
        """Force-build the current engine's shared artifacts.

        Builds ``Q`` / ``Q^T`` (and the compressed graph when the
        measure consumes it) so the first real query pays only its
        own walk. Returns the engine's stats snapshot.
        """
        snapshot = self.current
        engine = snapshot.engine
        engine.transition_t  # builds transition as a dependency
        if "compressed" in engine.measure.uses:
            engine.compressed
        return engine.stats.snapshot()

    def mutate(
        self,
        add: Iterable[Sequence] = (),
        remove: Iterable[Sequence] = (),
    ) -> Snapshot:
        """Apply edge edits through a background build and hot-swap.

        ``add`` / ``remove`` are iterables of ``(u, v)`` pairs (ids or
        labels, resolved against the *pre-mutation* snapshot). The new
        engine is built and warmed entirely off to the side; the old
        snapshot keeps serving until the atomic pointer swap, and
        in-flight queries that pinned it finish on it afterwards.

        Returns the new :class:`Snapshot`. Raises (and swaps nothing)
        if any edit is invalid — a failed mutation leaves serving
        untouched.
        """
        add = list(add)
        remove = list(remove)
        with self._build_lock:
            base = self.current
            graph = base.graph.copy()
            resolve = base.engine.resolve_node
            for u, v in add:
                graph.add_edge(resolve(u), resolve(v))
            for u, v in remove:
                graph.remove_edge(resolve(u), resolve(v))
            engine = SimilarityEngine(graph, self.config)
            # warm the expensive shared artifacts *before* the swap so
            # post-swap first queries pay only their own walk
            engine.transition_t
            if "compressed" in engine.measure.uses:
                engine.compressed
            self.builds += 1
            fresh = Snapshot(engine, seq=base.seq + 1)
            with self._swap_lock:
                self._current = fresh
                self.swaps += 1
        return fresh

    def describe(self) -> dict:
        """JSON-ready manager state: current snapshot + swap counters."""
        return {
            "current": self.current.describe(),
            "builds": self.builds,
            "swaps": self.swaps,
        }

    def __repr__(self) -> str:
        return (
            f"SnapshotManager(current={self.current!r}, "
            f"swaps={self.swaps})"
        )
