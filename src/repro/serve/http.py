"""Stdlib-only HTTP/JSON front end for a :class:`ServingService`.

No web framework — ``http.server.ThreadingHTTPServer`` plus JSON
bodies is enough for a serving sidecar, and it keeps the repo free of
dependencies. Every handler thread funnels its request into the
service's coalescing broker, so concurrency at the HTTP layer directly
becomes batch width at the kernel layer.

Endpoints
---------
``GET /healthz``
    Liveness: ``{"ok": true}``.
``GET /status``
    The full service status document (broker / cache / snapshot
    stats, batching knobs, config).
``GET /metrics``
    Prometheus text exposition (version 0.0.4) of every registered
    series — broker, caches, snapshot/delta, cluster (merged across
    worker processes), and engine. See :mod:`repro.obs` and
    ``docs/observability.md`` for the catalog.
``POST /top_k``
    Body ``{"query": <id-or-label>, "k": 10, "include_query": false}``
    -> the ranking as JSON. An optional ``"deadline_ms"`` field
    overrides the server's default per-request deadline.
``POST /score``
    Body ``{"u": <id-or-label>, "v": <id-or-label>}`` -> the score.
    Accepts the same optional ``"deadline_ms"`` field.
``POST /warmup``
    Pre-build the current snapshot's shared artifacts.
``POST /mutate``
    Body ``{"add": [[u, v], ...], "remove": [[u, v], ...]}`` ->
    builds a fresh snapshot in the background and hot-swaps it;
    responds with the new snapshot summary. With ``"canary": true``
    the edit is staged as a blue-green canary instead
    (:meth:`ServingService.mutate_canary`, optional ``"fraction"``
    field) and the response carries the live canary document; a
    canary already in flight answers 409.

Unknown nodes and malformed bodies answer 400 with
``{"error": ...}``; unexpected server-side failures answer 500. The
overload guard speaks HTTP too: a shed request
(:class:`~repro.serve.guard.Overloaded`) answers **429** with a
``Retry-After`` header, and a missed deadline
(:class:`~repro.serve.guard.DeadlineExceeded`) answers **504**.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.engine.results import Ranking
from repro.serve.guard import DeadlineExceeded, Overloaded
from repro.serve.service import ServingService

__all__ = ["SimilarityHTTPServer", "ranking_to_dict", "serve_http"]


def ranking_to_dict(ranking: Ranking) -> dict:
    """A JSON-ready rendering of a :class:`~repro.engine.Ranking`.

    >>> import numpy as np
    >>> from repro import Ranking
    >>> from repro.serve import ranking_to_dict
    >>> document = ranking_to_dict(Ranking.from_scores(
    ...     np.array([0.2, 0.9]), query=0, k=1, labels=["a", "b"]))
    >>> document["results"]
    [{'node': 1, 'label': 'b', 'score': 0.9}]
    """
    return {
        "query": ranking.query,
        "query_label": ranking.query_label,
        "measure": ranking.measure,
        "results": [
            {"node": entry.node, "label": entry.label,
             "score": entry.score}
            for entry in ranking
        ],
    }


class _Handler(BaseHTTPRequestHandler):
    # HTTP/1.1 keep-alive is safe: every response carries an explicit
    # Content-Length, and load generators reuse connections.
    protocol_version = "HTTP/1.1"
    server: "SimilarityHTTPServer"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 (stdlib name)
        if self.server.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(
        self,
        payload: dict,
        code: int = 200,
        headers: dict | None = None,
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        document = json.loads(raw)
        if not isinstance(document, dict):
            raise ValueError("request body must be a JSON object")
        return document

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        service = self.server.service
        if self.path == "/healthz":
            self._send_json({"ok": True})
        elif self.path == "/status":
            self._send_json(service.status())
        elif self.path == "/metrics":
            body = service.metrics_text().encode()
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._send_json({"error": f"no route {self.path}"}, 404)

    def do_POST(self) -> None:  # noqa: N802 (stdlib casing)
        service = self.server.service
        try:
            body = self._read_json()
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json({"error": f"bad JSON body: {exc}"}, 400)
            return
        try:
            deadline_ms = body.get("deadline_ms")
            if deadline_ms is not None:
                deadline_ms = float(deadline_ms)
            if self.path == "/top_k":
                if "query" not in body:
                    raise KeyError("missing field 'query'")
                ranking = service.top_k_sync(
                    body["query"],
                    k=int(body.get("k", 10)),
                    include_query=bool(body.get("include_query", False)),
                    deadline_ms=deadline_ms,
                )
                self._send_json(ranking_to_dict(ranking))
            elif self.path == "/score":
                if "u" not in body or "v" not in body:
                    raise KeyError("missing field 'u' or 'v'")
                score = service.score_sync(
                    body["u"], body["v"], deadline_ms=deadline_ms
                )
                self._send_json({"score": score})
            elif self.path == "/warmup":
                self._send_json({"engine_stats": service.warmup()})
            elif self.path == "/mutate":
                add = body.get("add", ())
                remove = body.get("remove", ())
                if body.get("canary"):
                    fraction = body.get("fraction")
                    try:
                        canary = service.mutate_canary(
                            add=add,
                            remove=remove,
                            fraction=(
                                None if fraction is None
                                else float(fraction)
                            ),
                        )
                    except RuntimeError as exc:
                        self._send_json({"error": str(exc)}, 409)
                        return
                    self._send_json({"canary": canary.describe()})
                else:
                    snapshot = service.mutate(add=add, remove=remove)
                    self._send_json({"snapshot": snapshot.describe()})
            else:
                self._send_json(
                    {"error": f"no route {self.path}"}, 404
                )
        except Overloaded as exc:
            # shed at admission: tell the client when to come back
            self._send_json(
                {"error": str(exc), "retry_after": exc.retry_after},
                429,
                headers={"Retry-After": f"{exc.retry_after:.3f}"},
            )
        except DeadlineExceeded as exc:
            self._send_json({"error": str(exc)}, 504)
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            # bad node, bad edit, bad parameter: the caller's fault
            self._send_json({"error": str(exc)}, 400)
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(
                {"error": f"internal error: {exc}"}, 500
            )


class SimilarityHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ServingService`.

    >>> from repro.graph import figure1_citation_graph
    >>> from repro.serve import ServingService, SimilarityHTTPServer
    >>> service = ServingService(figure1_citation_graph())
    >>> server = SimilarityHTTPServer(("127.0.0.1", 0), service)
    >>> server.url.startswith("http://127.0.0.1:")
    True
    >>> server.server_close()
    """

    daemon_threads = True
    # the default listen backlog (5) resets connections under the
    # very burst concurrency the broker exists to coalesce
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        service: ServingService,
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (useful with the ephemeral port 0)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def start_background(self) -> None:
        """Serve forever on a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("HTTP server already running")
        self._thread = threading.Thread(
            target=self.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Shut down the listener (and its thread, if backgrounded)."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None


def serve_http(
    service: ServingService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    verbose: bool = False,
    background: bool = False,
) -> SimilarityHTTPServer:
    """Bind an HTTP front end to ``service``.

    ``port=0`` picks an ephemeral port (read it back from
    ``server.port``). With ``background=True`` the server starts
    serving on a daemon thread before returning; otherwise call
    ``serve_forever()`` (or ``start_background()``) yourself. The
    service's background loop must be running
    (:meth:`ServingService.start_background`) for queries to succeed.

    Examples
    --------
    A real HTTP round-trip against an ephemeral port:

    >>> import json, urllib.request
    >>> from repro.graph import figure1_citation_graph
    >>> from repro.serve import ServingService, serve_http
    >>> service = ServingService(figure1_citation_graph())
    >>> service.start_background()
    >>> server = serve_http(service, background=True)
    >>> with urllib.request.urlopen(server.url + "/healthz") as reply:
    ...     json.loads(reply.read())
    {'ok': True}
    >>> server.stop(); service.close()
    """
    server = SimilarityHTTPServer((host, port), service, verbose=verbose)
    if background:
        server.start_background()
    return server
