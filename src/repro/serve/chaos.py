"""Scripted chaos drill for the guard layer (``serve chaos``).

One function, :func:`run_drill`, stands up a real cluster-mode
:class:`~repro.serve.ServingService` behind a real HTTP server and
attacks it with the pool's chaos hooks while client load is in
flight:

* **kill** — ``kill_worker`` SIGKILLs a worker mid-batch; the
  breaker trips, the in-process fallback answers the shard, the
  respawned worker is restored by a half-open probe.
* **hang** — ``hang_worker`` wedges a worker past ``shard_timeout``;
  same recovery path, exercised through the timeout detector.
* **corrupt** — ``corrupt_next_reply`` desynchronises one reply's
  framing; the crash detector treats it like a dead worker.
* **bad green** — a blue-green canary whose green side is forced to
  error (``inject_green_fault``) must auto-roll back with blue still
  serving.

The drill's contract is the guard layer's contract: **no request is
ever dropped** — every submitted request resolves to a rendered
answer, an explicit 429 shed, or an explicit 504 deadline — p99 stays
bounded, every injected fault trips a breaker that later restores,
and the bad green never becomes the serving snapshot. The report
(and the breaker-transition JSONL) are the CI artifacts.

The module is import-light on purpose: tests call :func:`run_drill`
at small scale directly, and ``python -m repro.serve chaos`` is the
CI entry point.

>>> from repro.serve.chaos import classify_status
>>> classify_status(200), classify_status(429), classify_status(504)
('ok', 'shed', 'deadline')
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.graph.generators import random_digraph
from repro.serve.http import serve_http
from repro.serve.service import ServingService

__all__ = ["classify_status", "run_drill"]


def classify_status(code: int) -> str:
    """Bucket an HTTP status into the drill's accounting ledger.

    ``ok`` / ``shed`` (429, load shedding) / ``deadline`` (504) are
    the three *accounted* outcomes; anything else is an ``error``,
    which the drill treats as a dropped request.

    >>> classify_status(500)
    'error'
    """
    if code == 200:
        return "ok"
    if code == 429:
        return "shed"
    if code == 504:
        return "deadline"
    return "error"


def _post_top_k(url: str, query: int, k: int, timeout: float) -> str:
    body = json.dumps({"query": query, "k": k}).encode()
    request = urllib.request.Request(
        f"{url}/top_k",
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            reply.read()
            return classify_status(reply.status)
    except urllib.error.HTTPError as exc:
        exc.read()
        return classify_status(exc.code)
    except Exception:
        return "error"


def run_drill(
    *,
    backend: str = "process",
    workers: int = 2,
    clients: int = 16,
    requests_per_client: int = 4,
    nodes: int = 300,
    edges: int = 1800,
    seed: int = 7,
    k: int = 5,
    max_queue_depth: int = 256,
    default_deadline_ms: float = 10_000.0,
    breaker_threshold: int = 1,
    breaker_cooldown_s: float = 0.4,
    shard_timeout: float = 1.0,
    canary_fraction: float = 0.5,
    canary_min_requests: int = 8,
    p99_budget_ms: float = 30_000.0,
    request_timeout_s: float = 60.0,
    report_path=None,
    transitions_path=None,
    verbose: bool = False,
) -> dict:
    """Run the scripted kill/hang/corrupt/bad-green drill; return the report.

    The report dict carries per-wave outcome counts, the global
    accounting ledger, latency percentiles, the breaker's
    trip/restore history, the canary verdict, and a ``checks`` map
    whose conjunction is the drill's pass/fail. ``report_path`` /
    ``transitions_path`` additionally write the report JSON and the
    breaker-transition JSONL (the CI artifacts).

    Defaults are CI-sized; tests call it with smaller ``clients`` /
    ``nodes``. ``backend`` selects the process or thread pool — the
    drill is identical for both because the chaos hooks are part of
    the pool contract.
    """
    graph = random_digraph(nodes, edges, seed=seed)
    service = ServingService(
        graph,
        num_iterations=5,
        workers=workers,
        backend=backend,
        shard_timeout=shard_timeout,
        # every request must reach dispatch for the ledger to mean
        # anything — the result cache would hide repeats
        cache_entries=0,
        max_queue_depth=max_queue_depth,
        default_deadline_ms=default_deadline_ms,
        breaker_threshold=breaker_threshold,
        breaker_cooldown_s=breaker_cooldown_s,
        canary_fraction=canary_fraction,
        canary_min_requests=canary_min_requests,
    )
    service.start_background()
    service.warmup()
    server = serve_http(service, background=True)
    url = server.url

    counts = {"ok": 0, "shed": 0, "deadline": 0, "error": 0}
    latencies: list[float] = []
    submitted = 0
    waves: list[dict] = []

    def wave(name: str, inject=None) -> dict:
        nonlocal submitted
        wave_counts = {"ok": 0, "shed": 0, "deadline": 0, "error": 0}

        def client(stream: list[int]) -> None:
            nonlocal submitted
            for query in stream:
                t0 = time.perf_counter()
                outcome = _post_top_k(url, query, k, request_timeout_s)
                latencies.append(time.perf_counter() - t0)
                wave_counts[outcome] += 1

        streams = [
            [
                (seed + i * requests_per_client + j) % nodes
                for j in range(requests_per_client)
            ]
            for i in range(clients)
        ]
        submitted += clients * requests_per_client
        with ThreadPoolExecutor(max_workers=clients) as pool:
            futures = [pool.submit(client, s) for s in streams]
            if inject is not None:
                inject()
            for future in futures:
                future.result()
        for key, value in wave_counts.items():
            counts[key] += value
        row = dict(wave_counts, name=name)
        waves.append(row)
        if verbose:
            print(f"  wave {name}: {wave_counts}", flush=True)
        return row

    pool = service.cluster.pool
    canary_report: dict = {}
    try:
        wave("baseline")
        wave("kill", inject=lambda: pool.kill_worker(0))
        time.sleep(breaker_cooldown_s * 1.5)
        wave("recover-kill")
        hang_target = min(1, workers - 1)
        wave(
            "hang",
            inject=lambda: pool.hang_worker(
                hang_target, shard_timeout * 1.5
            ),
        )
        time.sleep(breaker_cooldown_s * 1.5)
        wave("recover-hang")
        wave("corrupt", inject=lambda: pool.corrupt_next_reply(0))
        time.sleep(breaker_cooldown_s * 1.5)
        wave("recover-corrupt")

        blue_seq = service.snapshots.current.seq

        def bad_green() -> None:
            raise RuntimeError("chaos drill: forced bad green build")

        canary = service.mutate_canary(
            add=[(0, 0)],
            inject_green_fault=bad_green,
        )
        deadline = time.monotonic() + request_timeout_s
        while canary.outcome is None and time.monotonic() < deadline:
            # canary-wave traffic: green-side requests fail by design,
            # so this wave keeps its own ledger outside `counts`
            wave_row = wave("canary-bad-green")
            if wave_row["error"] == 0 and canary.outcome is None:
                time.sleep(0.05)
        # the canary wave's intentional green errors are accounted
        # separately: remove them from the global drop ledger
        canary_rows = [w for w in waves if w["name"] == "canary-bad-green"]
        for row in canary_rows:
            counts["error"] -= row["error"]
            submitted -= row["error"]
        canary_report = service.canary_status() or {}
        wave("after-rollback")
    finally:
        cluster = service.cluster
        status = service.status()
        server.stop()
        service.close()

    from repro.bench.loadgen import LatencyStats

    stats = LatencyStats.from_seconds(latencies)
    breaker = status["guard"]["breaker"] or {}
    transitions = cluster.breakers.transitions
    accounted = counts["ok"] + counts["shed"] + counts["deadline"]
    checks = {
        "zero_unaccounted_requests": accounted == submitted
        and counts["error"] == 0,
        "p99_bounded": stats.p99_ms <= p99_budget_ms,
        "breaker_tripped": breaker.get("trips", 0) >= 3,
        "breaker_recovered": breaker.get("restores", 0) >= 1,
        "bad_green_rolled_back": (
            canary_report.get("outcome") == "rollback"
        ),
        "blue_still_serving": (
            status["snapshots"]["current"]["seq"] == blue_seq
            and waves[-1]["ok"] > 0
        ),
    }
    report = {
        "backend": backend,
        "workers": workers,
        "submitted": submitted,
        "counts": counts,
        "waves": waves,
        "latency": stats.to_dict(),
        "breaker": breaker,
        "canary": canary_report,
        "checks": checks,
        "ok": all(checks.values()),
    }
    if report_path is not None:
        Path(report_path).write_text(
            json.dumps(report, indent=2) + "\n"
        )
    if transitions_path is not None:
        Path(transitions_path).write_text(
            "".join(json.dumps(row) + "\n" for row in transitions)
        )
    return report
