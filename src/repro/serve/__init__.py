"""Async query serving: coalesce, cache, and hot-swap over the engine.

The paper's regime is preprocess-once / serve-many; :mod:`repro.engine`
holds the preprocess-once half and this package is the serve-many
half — the online layer that turns independently arriving requests
into the batched workloads the blocked kernel (PR 2) is fast at:

* :class:`QueryBroker` — an asyncio micro-batch coalescer: requests
  queue, the dispatcher collects up to ``max_batch`` of them (waiting
  at most ``max_wait_ms`` past the first), and one blocked
  multi-source call answers the whole batch.
* :class:`ResultCache` — a bounded LRU of rendered answers keyed on
  ``(snapshot, config, query)``; a graph mutation changes the key, so
  stale answers age out instead of being served.
* :class:`SnapshotManager` / :class:`Snapshot` — graph mutations
  build a fresh engine off to the side and atomically swap it in;
  in-flight batches finish on the snapshot they pinned (zero failed
  requests across a swap). With ``index_path`` set, replacement
  engines warm from a persisted :class:`~repro.index.SimilarityIndex`
  when its fingerprint matches, and freshly built precomputation is
  persisted back — restarts memory-map instead of rebuilding.
* :class:`ServingService` — the facade wiring the three together,
  usable async-natively or from sync threads via a private
  background event loop. ``ServingService(graph, workers=K)`` scales
  out: batches are sharded across a :mod:`repro.cluster` worker pool
  whose processes memory-map one shared index.
* :func:`serve_http` / :class:`SimilarityHTTPServer` — a stdlib
  HTTP/JSON front end; ``python -m repro.serve`` is the CLI
  (``serve`` / ``warmup`` / ``status`` / ``smoke`` / ``chaos``).
* :mod:`repro.serve.guard` — the overload-protection layer threaded
  through all of the above: bounded-admission load shedding
  (:class:`Overloaded` → HTTP 429), per-request deadlines
  (:class:`DeadlineExceeded` → HTTP 504), a per-worker
  :class:`CircuitBreaker` board quarantining crash-looping workers
  behind an in-process fallback, and blue-green :class:`Canary`
  snapshot swaps with automatic promote/rollback. The scripted
  chaos drill (``python -m repro.serve chaos``,
  :mod:`repro.serve.chaos`) proves the stack sheds instead of
  collapsing.

Quick taste::

    async with ServingService(graph, measure="gSR*",
                              max_batch=32, max_wait_ms=2.0) as svc:
        rankings = await asyncio.gather(
            *(svc.top_k(q, k=10) for q in queries)
        )
        assert svc.broker.stats.largest_batch > 1  # they coalesced
"""

from repro.serve.broker import BrokerStats, QueryBroker
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.guard import (
    BreakerBoard,
    Canary,
    CircuitBreaker,
    DeadlineExceeded,
    Overloaded,
)
from repro.serve.http import (
    SimilarityHTTPServer,
    ranking_to_dict,
    serve_http,
)
from repro.serve.service import ServingService
from repro.serve.snapshot import Snapshot, SnapshotManager

__all__ = [
    "BreakerBoard",
    "BrokerStats",
    "CacheStats",
    "Canary",
    "CircuitBreaker",
    "DeadlineExceeded",
    "Overloaded",
    "QueryBroker",
    "ResultCache",
    "ServingService",
    "SimilarityHTTPServer",
    "Snapshot",
    "SnapshotManager",
    "ranking_to_dict",
    "serve_http",
]
