"""Figure 5: dataset roster and generation cost."""

from conftest import run_and_check

from repro.datasets import citation_network


def test_fig5_reproduces_paper_table(benchmark, capsys):
    run_and_check(benchmark, capsys, "fig5")


def test_fig5_citation_generator_timing(benchmark):
    benchmark.pedantic(
        citation_network, args=(600,), kwargs={"avg_out_degree": 8.0},
        rounds=3, iterations=1,
    )
