"""Shared benchmark fixtures.

Every ``bench_*`` module pairs (a) a *shape test* that regenerates its
table/figure via :mod:`repro.experiments`, prints the paper-style
rows, and asserts the paper's qualitative claims, with (b) one or more
pytest-benchmark timings of the exhibit's core computation. Shape
tests are benchmarked too (one round — they time the full experiment)
so the whole suite runs under ``--benchmark-only``.
"""

from repro.experiments import run_experiment


def run_and_check(benchmark, capsys, name: str) -> None:
    """Time one fast-mode experiment run, print it, assert its checks."""
    result = benchmark.pedantic(
        run_experiment, args=(name,), kwargs={"fast": True},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(result.render())
    result.assert_all_checks()
