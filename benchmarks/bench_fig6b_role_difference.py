"""Figure 6(b): role difference of top-ranked node-pairs."""

from conftest import run_and_check

from repro.analysis import top_pair_attribute_difference
from repro.core import simrank_star
from repro.datasets import load_dataset


def test_fig6b_reproduces_paper_shape(benchmark, capsys):
    run_and_check(benchmark, capsys, "fig6b")


def test_fig6b_top_pair_analysis_timing(benchmark):
    ds = load_dataset("dblp")
    scores = simrank_star(ds.graph, 0.6, 10)
    benchmark.pedantic(
        top_pair_attribute_difference,
        args=(scores, ds.node_attribute),
        rounds=3,
        iterations=1,
    )
