"""Ablation: biclique-mining knobs vs compression and cost."""

import pytest
from conftest import run_and_check

from repro.bigraph import induced_bigraph, mine_bicliques
from repro.datasets import load_dataset


def test_ablation_biclique_shape(benchmark, capsys):
    run_and_check(benchmark, capsys, "abl-biclique")


@pytest.mark.parametrize("cap", [8, 64])
def test_mining_timing_by_seeding_cap(benchmark, cap):
    bigraph = induced_bigraph(load_dataset("web-google").graph)
    benchmark.pedantic(
        mine_bicliques,
        args=(bigraph,),
        kwargs={"max_set_size_for_seeding": cap},
        rounds=2,
        iterations=1,
    )
