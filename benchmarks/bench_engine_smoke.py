"""Engine precomputation-reuse smoke benchmark (the CI gate).

Asserts the whole point of :class:`repro.engine.SimilarityEngine`:
the first query pays for the shared precomputation (transition
matrices, series walk), and every subsequent query is served from the
memo — strictly faster, with zero artifact rebuilds. Plain pytest, no
pytest-benchmark dependency, so it runs anywhere the tier-1 suite
runs.
"""

import time

from repro import SimilarityEngine
from repro.graph import random_digraph


def _clock(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_second_query_is_faster_than_first():
    graph = random_digraph(400, 2400, seed=7)
    engine = SimilarityEngine(graph, measure="gSR*", c=0.6,
                              num_iterations=10)
    first = _clock(lambda: engine.top_k(3, k=10))
    second = _clock(lambda: engine.top_k(3, k=10))
    # the first call built Q and walked the series; the second is a
    # memo lookup — orders of magnitude apart, so a strict comparison
    # is safe even on noisy CI runners.
    assert second < first, (
        f"expected the cached query to be faster: "
        f"first={first:.6f}s second={second:.6f}s"
    )
    assert engine.stats.transition_builds == 1
    assert engine.stats.column_computes == 1
    assert engine.stats.hits == 1


def test_fresh_queries_never_rebuild_artifacts():
    graph = random_digraph(300, 1800, seed=11)
    engine = SimilarityEngine(graph, measure="gSR*", c=0.6,
                              num_iterations=8)
    for query in range(20):
        engine.top_k(query, k=5)
    assert engine.stats.transition_builds == 1
    assert engine.stats.column_computes == 20


def test_memo_measure_compresses_bicliques_once():
    graph = random_digraph(150, 1200, seed=13)
    engine = SimilarityEngine(graph, measure="memo-gSR*", c=0.6,
                              num_iterations=6)
    first = _clock(engine.matrix)
    again = _clock(engine.matrix)
    assert again < first
    assert engine.stats.compression_builds == 1
    assert engine.stats.matrix_builds == 1
