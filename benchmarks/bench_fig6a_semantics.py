"""Figure 6(a): semantic effectiveness of the five measures."""

from conftest import run_and_check

from repro.core import simrank_star
from repro.datasets import load_dataset


def test_fig6a_reproduces_paper_shape(benchmark, capsys):
    run_and_check(benchmark, capsys, "fig6a")


def test_fig6a_gsr_star_all_pairs_timing(benchmark):
    graph = load_dataset("dblp").graph
    benchmark.pedantic(
        simrank_star, args=(graph, 0.6, 10), rounds=3, iterations=1
    )
