"""Figure 6(c): within/cross role-decile average similarity."""

from conftest import run_and_check

from repro.analysis import grouped_similarity
from repro.core import simrank_star
from repro.datasets import load_dataset


def test_fig6c_reproduces_paper_shape(benchmark, capsys):
    run_and_check(benchmark, capsys, "fig6c")


def test_fig6c_grouping_timing(benchmark):
    ds = load_dataset("dblp")
    scores = simrank_star(ds.graph, 0.6, 10)
    benchmark.pedantic(
        grouped_similarity,
        args=(scores, ds.node_attribute),
        kwargs={"min_score": 1e-4},
        rounds=3,
        iterations=1,
    )
