"""Figure 6(g): effect of graph density on time and compression."""

import pytest
from conftest import run_and_check

from repro.core import memo_simrank_star_factorized
from repro.graph import rmat


def test_fig6g_reproduces_paper_shape(benchmark, capsys):
    run_and_check(benchmark, capsys, "fig6g")


@pytest.mark.parametrize("density", [10, 40])
def test_fig6g_memo_timing_by_density(benchmark, density):
    graph = rmat(9, density * 512, seed=17)
    benchmark.pedantic(
        memo_simrank_star_factorized,
        args=(graph, 0.6, 5),
        rounds=2,
        iterations=1,
    )
