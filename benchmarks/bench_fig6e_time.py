"""Figure 6(e): time efficiency — the head-to-head algorithm timings.

The per-algorithm benchmarks below are the pytest-benchmark view of
the paper's bars: same dataset (D11), accuracy-matched iteration
counts, one row per implementation.
"""

import pytest
from conftest import run_and_check

from repro.core import iterations_for_accuracy
from repro.datasets import load_dataset
from repro.measures import TIMED_ALGORITHMS

C = 0.6
EPSILON = 1e-3


def test_fig6e_reproduces_paper_shape(benchmark, capsys):
    run_and_check(benchmark, capsys, "fig6e")


@pytest.mark.parametrize("label", list(TIMED_ALGORITHMS))
def test_fig6e_algorithm_timing_d11(benchmark, label):
    graph = load_dataset("d11").graph
    variant = "exponential" if "eSR" in label else "geometric"
    k = iterations_for_accuracy(C, EPSILON, variant)
    benchmark.pedantic(
        TIMED_ALGORITHMS[label],
        args=(graph, C, k),
        rounds=3,
        iterations=1,
    )
