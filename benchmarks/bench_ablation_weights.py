"""Ablation: length-weight schemes (geometric / exponential / harmonic)."""

import pytest
from conftest import run_and_check

from repro.core import (
    ExponentialWeights,
    GeometricWeights,
    HarmonicWeights,
    simrank_star_series,
)
from repro.datasets import load_dataset

SCHEMES = {
    "geometric": GeometricWeights,
    "exponential": ExponentialWeights,
    "harmonic": HarmonicWeights,
}


def test_ablation_weights_shape(benchmark, capsys):
    run_and_check(benchmark, capsys, "abl-weights")


@pytest.mark.parametrize("name", list(SCHEMES))
def test_series_timing_by_scheme(benchmark, name):
    graph = load_dataset("d05").graph
    weights = SCHEMES[name](0.8)
    benchmark.pedantic(
        simrank_star_series,
        args=(graph, 0.8, 10),
        kwargs={"weights": weights},
        rounds=3,
        iterations=1,
    )
