"""Figure 6(f): amortized phase time (compress vs share sums)."""

from conftest import run_and_check

from repro.bigraph import compress_graph
from repro.datasets import load_dataset


def test_fig6f_reproduces_paper_shape(benchmark, capsys):
    run_and_check(benchmark, capsys, "fig6f")


def test_fig6f_compress_phase_timing(benchmark):
    graph = load_dataset("web-google").graph
    benchmark.pedantic(
        compress_graph, args=(graph,), rounds=3, iterations=1
    )
