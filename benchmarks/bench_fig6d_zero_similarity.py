"""Figure 6(d): the zero-similarity census."""

from conftest import run_and_check

from repro.analysis import zero_similarity_census
from repro.datasets import load_dataset


def test_fig6d_reproduces_paper_shape(benchmark, capsys):
    run_and_check(benchmark, capsys, "fig6d")


def test_fig6d_census_timing(benchmark):
    graph = load_dataset("dblp").graph
    benchmark.pedantic(
        zero_similarity_census, args=(graph,), rounds=3, iterations=1
    )
