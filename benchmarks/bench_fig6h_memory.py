"""Figure 6(h): memory footprint comparison."""

from conftest import run_and_check

from repro.bench.memory import measure_peak_memory
from repro.core import memo_simrank_star_factorized
from repro.datasets import load_dataset


def test_fig6h_reproduces_paper_shape(benchmark, capsys):
    run_and_check(benchmark, capsys, "fig6h")


def test_fig6h_measurement_overhead_timing(benchmark):
    graph = load_dataset("d08").graph
    benchmark.pedantic(
        measure_peak_memory,
        args=(memo_simrank_star_factorized, graph, 0.6, 5),
        rounds=2,
        iterations=1,
    )
