"""Figure 1: the motivating similarity table (exact reproduction)."""

from conftest import run_and_check

from repro.core import simrank_star
from repro.graph import figure1_citation_graph


def test_fig1_reproduces_paper_table(benchmark, capsys):
    run_and_check(benchmark, capsys, "fig1")


def test_fig1_simrank_star_timing(benchmark):
    graph = figure1_citation_graph()
    benchmark(simrank_star, graph, 0.8, 50)
